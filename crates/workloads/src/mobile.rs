//! The cellular-access model of the mobile case study (§6.5).
//!
//! The paper surveys major US carriers and reports 2–5 Mbps typical uplink
//! bandwidth, median pings of 50–60 ms to the big cloud providers with a
//! 50–90th-percentile range of roughly 50–100 ms, and a negligible battery
//! cost for duplicating a Skype call (≈20 mAh over a 20-minute call whether
//! or not duplication is on).  [`MobileProfile`] packages those numbers and
//! answers the case study's feasibility questions.

use netsim::delay::DelaySpec;
use netsim::loss::LossSpec;
use netsim::{Dur, LinkSpec, Topology};

/// A cellular access profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MobileProfile {
    /// Uplink bandwidth in bits per second.
    pub uplink_bps: u64,
    /// Downlink bandwidth in bits per second.
    pub downlink_bps: u64,
    /// Median one-way latency from the device to the nearest cloud region.
    pub median_dc_latency: Dur,
    /// 90th-percentile one-way latency to the nearest cloud region.
    pub p90_dc_latency: Dur,
    /// Random loss on the cellular access link.
    pub access_loss: f64,
    /// Battery drain per transmitted megabyte, in mAh (derived from the ≈20
    /// mAh / 20-minute-call observation).
    pub mah_per_mb: f64,
}

impl MobileProfile {
    /// A typical LTE connection as surveyed in §6.5.
    pub fn lte_typical() -> Self {
        MobileProfile {
            uplink_bps: 5_000_000,
            downlink_bps: 20_000_000,
            // Median ping 50–60 ms => one-way ≈ 27 ms; p90 ≈ 100 ms RTT.
            median_dc_latency: Dur::from_millis(27),
            p90_dc_latency: Dur::from_millis(50),
            access_loss: 0.002,
            mah_per_mb: 0.09,
        }
    }

    /// A constrained cellular uplink (the low end of the 2–5 Mbps survey).
    pub fn lte_constrained() -> Self {
        MobileProfile {
            uplink_bps: 2_000_000,
            ..MobileProfile::lte_typical()
        }
    }

    /// The access-link spec toward the cloud (uplink direction), with jitter
    /// between the median and the 90th percentile.
    pub fn uplink_spec(&self) -> LinkSpec {
        LinkSpec::with_delay(DelaySpec::UniformJitter {
            base: self.median_dc_latency,
            jitter: self.p90_dc_latency - self.median_dc_latency,
        })
        .loss(LossSpec::Bernoulli(self.access_loss))
        .bandwidth(self.uplink_bps, 200)
    }

    /// Whether duplicating a stream of `stream_bps` onto the cloud path fits
    /// within the uplink (the §6.5 question: 1.5 Mbps Skype × 2 ≈ 3 Mbps vs a
    /// 2–5 Mbps uplink).
    pub fn duplication_fits(&self, stream_bps: u64) -> bool {
        stream_bps * 2 <= self.uplink_bps
    }

    /// Headroom left on the uplink after duplicating a stream (bits/s);
    /// negative values are clamped to zero.
    pub fn duplication_headroom_bps(&self, stream_bps: u64) -> u64 {
        self.uplink_bps.saturating_sub(stream_bps * 2)
    }

    /// Battery drain of sending `megabytes` of data, in mAh.
    pub fn battery_cost_mah(&self, megabytes: f64) -> f64 {
        self.mah_per_mb * megabytes
    }

    /// Extra battery drain caused by duplicating a `stream_bps` stream for
    /// `minutes` minutes, in mAh.  With the surveyed constants this is a few
    /// mAh for a 20-minute call — the "negligible impact" finding of §6.5.
    pub fn duplication_battery_cost_mah(&self, stream_bps: u64, minutes: f64) -> f64 {
        let megabytes = stream_bps as f64 / 8.0 * minutes * 60.0 / 1_000_000.0;
        self.battery_cost_mah(megabytes)
    }

    /// A J-QoS topology for a mobile sender: a wide-area Internet path whose
    /// sender-side segments are constrained by the cellular uplink.
    pub fn topology(&self, internet_loss: LossSpec) -> Topology {
        let mut t = Topology::wide_area(internet_loss);
        t.sender_dc1 = self.uplink_spec();
        t.internet = t.internet.bandwidth(self.uplink_bps, 200);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skype_duplication_fits_a_typical_lte_uplink() {
        let lte = MobileProfile::lte_typical();
        assert!(lte.duplication_fits(1_500_000));
        assert_eq!(lte.duplication_headroom_bps(1_500_000), 2_000_000);
    }

    #[test]
    fn skype_duplication_can_saturate_a_constrained_uplink() {
        // 3 Mbps of duplicated HD video does not fit a 2 Mbps uplink — the
        // case where §6.5 recommends selective duplication instead.
        let lte = MobileProfile::lte_constrained();
        assert!(!lte.duplication_fits(1_500_000));
        assert_eq!(lte.duplication_headroom_bps(1_500_000), 0);
    }

    #[test]
    fn battery_cost_of_duplication_is_negligible() {
        let lte = MobileProfile::lte_typical();
        // Duplicating a 1.5 Mbps call for 20 minutes.
        let cost = lte.duplication_battery_cost_mah(1_500_000, 20.0);
        assert!(cost < 25.0, "duplication cost {cost} mAh");
        assert!(cost > 1.0, "cost should be non-zero, got {cost}");
    }

    #[test]
    fn dc_latency_range_matches_survey() {
        let lte = MobileProfile::lte_typical();
        let median_rtt = lte.median_dc_latency.as_millis_f64() * 2.0;
        let p90_rtt = lte.p90_dc_latency.as_millis_f64() * 2.0;
        assert!(
            (50.0..=60.0).contains(&median_rtt),
            "median rtt {median_rtt}"
        );
        assert!((90.0..=110.0).contains(&p90_rtt), "p90 rtt {p90_rtt}");
    }

    #[test]
    fn uplink_spec_carries_bandwidth_cap_and_jitter() {
        let lte = MobileProfile::lte_typical();
        let spec = lte.uplink_spec();
        assert_eq!(spec.bandwidth_bps, Some(5_000_000));
        assert!(matches!(spec.delay, DelaySpec::UniformJitter { .. }));
        let topo = lte.topology(LossSpec::Bernoulli(0.01));
        assert_eq!(topo.sender_dc1.bandwidth_bps, Some(5_000_000));
        assert_eq!(topo.internet.bandwidth_bps, Some(5_000_000));
    }
}
