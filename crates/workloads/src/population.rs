//! City-scale flow populations with class aggregation.
//!
//! Simulating 10^5–10^6 users packet-by-packet is infeasible, and the paper's
//! city-scale arguments (§7) don't need it: flows fall into a modest number
//! of *classes* — a workload model crossed with a region pair — and flows in
//! a class are statistically exchangeable.  This module therefore:
//!
//! 1. partitions the population across a [class catalog](class_catalog) with
//!    a largest-remainder rule (so class user counts always sum exactly to
//!    the population);
//! 2. samples per-class session arrivals hour-by-hour from the
//!    measurement-derived demand curves in the `measurements` crate (diurnal
//!    load anchored to the receiver's local time, flash crowds, correlated
//!    cross-DC loss episodes, mobile handoffs);
//! 3. simulates `K` *representative* flows per class packet-level on netsim,
//!    each on its own PlanetLab-calibrated path sample, at the class's
//!    busiest observed hour;
//! 4. scales the representative statistics analytically to the class's
//!    arrival volume, so a whole city resolves in seconds to minutes.
//!
//! Everything is a deterministic function of `(config, seed)`: every class
//! draws from its own `component_rng` stream, so reports are byte-identical
//! regardless of how sweep points are scheduled across threads.

use rand::rngs::SmallRng;
use rand::Rng;

use jqos_core::prelude::*;
use jqos_core::CityAxis;
use jqos_core::FlashCrowdLevel;
use measurements::loadcurves::{
    cross_dc_loss_episodes, flash_crowds, flash_multiplier, inter_dc_loss_at, DiurnalCurve,
    HandoffModel,
};
use measurements::planetlab::planetlab_paths_for_pair;
use measurements::regions::{Region, RegionPair};
use netsim::loss::LossSpec;
use netsim::rng::component_rng;
use netsim::stats::Cdf;
use netsim::trace::TraceArena;

use crate::cbr::OnOffCbrSource;
use crate::video::{VideoConfig, VideoSource};
use crate::web::WebTransferSpec;

/// The application model of a flow class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadModel {
    /// Interactive video call (Skype profile, coding service).
    Video,
    /// Video over a cellular access link with periodic handoffs.
    MobileVideo,
    /// Short web transfers (Google-study profile).
    Web,
    /// ON/OFF CBR probe streams (the PlanetLab deployment workload).
    OnOffProbe,
}

impl WorkloadModel {
    /// Every model, in catalog order.
    pub const ALL: [WorkloadModel; 4] = [
        WorkloadModel::Video,
        WorkloadModel::MobileVideo,
        WorkloadModel::Web,
        WorkloadModel::OnOffProbe,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadModel::Video => "video",
            WorkloadModel::MobileVideo => "mobile",
            WorkloadModel::Web => "web",
            WorkloadModel::OnOffProbe => "probe",
        }
    }

    /// The J-QoS service the class registers for.  Interactive video takes
    /// the cheap coding service; mobile and web flows want whole-packet
    /// recovery from a nearby DC (caching); probes ride the forwarding
    /// service the deployment used.
    pub fn service(&self) -> ServiceKind {
        match self {
            WorkloadModel::Video => ServiceKind::Coding,
            WorkloadModel::MobileVideo | WorkloadModel::Web => ServiceKind::Caching,
            WorkloadModel::OnOffProbe => ServiceKind::Forwarding,
        }
    }

    /// Share of the population running this model.
    pub fn share(&self) -> f64 {
        match self {
            WorkloadModel::Video => 0.45,
            WorkloadModel::MobileVideo => 0.15,
            WorkloadModel::Web => 0.30,
            WorkloadModel::OnOffProbe => 0.10,
        }
    }

    /// Sessions started per user per hour at peak demand.
    pub fn sessions_per_user_hour(&self) -> f64 {
        match self {
            WorkloadModel::Video => 0.25,
            WorkloadModel::MobileVideo => 0.20,
            WorkloadModel::Web => 2.0,
            WorkloadModel::OnOffProbe => 0.05,
        }
    }

    /// One-way delivery budget that counts as meeting the class SLO.
    pub fn slo_budget(&self) -> Dur {
        match self {
            WorkloadModel::Video => Dur::from_millis(250),
            WorkloadModel::MobileVideo => Dur::from_millis(300),
            WorkloadModel::Web => Dur::from_millis(500),
            WorkloadModel::OnOffProbe => Dur::from_millis(400),
        }
    }

    /// Data volume of one session, GB per hour (for the cost model).
    pub fn gb_per_session_hour(&self) -> f64 {
        match self {
            WorkloadModel::Video => 0.675,
            WorkloadModel::MobileVideo => 0.09,
            WorkloadModel::Web => 0.05,
            WorkloadModel::OnOffProbe => 0.072,
        }
    }
}

/// One flow class: a workload model between a region pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowClass {
    /// Stable catalog index (classes are always enumerated in this order).
    pub index: usize,
    /// Application model.
    pub model: WorkloadModel,
    /// Sender/receiver regions.
    pub pair: RegionPair,
    /// Population weight (model share × pair weight; unnormalised).
    pub weight: f64,
}

impl FlowClass {
    /// Label such as `video:US-E->EU` used in reports.
    pub fn label(&self) -> String {
        format!("{}:{}", self.model.label(), self.pair.label())
    }
}

/// The region pairs a city's flows traverse, with their traffic weights
/// (mirrors the PlanetLab deployment mix).
pub fn region_pair_mix() -> Vec<(RegionPair, f64)> {
    vec![
        (RegionPair::new(Region::UsEast, Region::Europe), 0.30),
        (RegionPair::new(Region::UsWest, Region::Oceania), 0.20),
        (RegionPair::new(Region::Europe, Region::Oceania), 0.15),
        (RegionPair::new(Region::UsEast, Region::Asia), 0.15),
        (RegionPair::new(Region::Europe, Region::Asia), 0.10),
        (RegionPair::new(Region::UsWest, Region::UsEast), 0.10),
    ]
}

/// The deterministic class catalog: every workload model crossed with every
/// region pair, in a fixed order.  All partitioning, RNG streams and report
/// rows are keyed by position in this list.
pub fn class_catalog() -> Vec<FlowClass> {
    let pairs = region_pair_mix();
    let mut classes = Vec::with_capacity(WorkloadModel::ALL.len() * pairs.len());
    for model in WorkloadModel::ALL {
        for &(pair, pair_weight) in &pairs {
            classes.push(FlowClass {
                index: classes.len(),
                model,
                pair,
                weight: model.share() * pair_weight,
            });
        }
    }
    classes
}

/// Splits `population` across `weights` with the largest-remainder rule, so
/// the shares always sum exactly to `population`.
pub fn partition_population(population: u64, weights: &[f64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "class weights must sum to a positive value");
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fractions: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    for (i, w) in weights.iter().enumerate() {
        let exact = population as f64 * (w / total);
        let floor = exact.floor() as u64;
        shares.push(floor);
        fractions.push((i, exact - floor as f64));
    }
    let assigned: u64 = shares.iter().sum();
    let mut remainder = population.saturating_sub(assigned);
    // Largest fractional part first; ties break on catalog order so the
    // partition is deterministic.
    fractions.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    for &(i, _) in &fractions {
        if remainder == 0 {
            break;
        }
        shares[i] += 1;
        remainder -= 1;
    }
    shares
}

/// Samples a Poisson variate.  Knuth's product method below λ = 30, a
/// normal approximation above (adequate for arrival counts in the 10^2–10^6
/// range this module deals in).
pub fn sample_poisson(rng: &mut SmallRng, lambda: f64) -> u64 {
    // Treat NaN like "no demand" rather than letting it poison the loop.
    if lambda.is_nan() || lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        let u1 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as u64
    }
}

/// Everything a city run needs besides the seed.
#[derive(Clone, Copy, Debug)]
pub struct CityConfig {
    /// The sweep-axis parameters (population, diurnal phase, flash crowds).
    pub axis: CityAxis,
    /// Hours of the arrival process observed per class.
    pub observed_hours: u32,
    /// Representative flows simulated packet-level per class.
    pub reps_per_class: usize,
    /// Simulated duration of each representative flow.
    pub sim_duration: Dur,
}

impl CityConfig {
    /// Full-fidelity defaults: a 24 h observation window with 4
    /// representative flows per class, 6 s of packets each.
    pub fn new(axis: CityAxis) -> Self {
        CityConfig {
            axis,
            observed_hours: 24,
            reps_per_class: 4,
            sim_duration: Dur::from_secs(6),
        }
    }

    /// Smaller knobs for smoke runs: a 6 h window, 2 reps, 3 s sims.  The
    /// population itself is *not* reduced — scaling is analytic, so a
    /// million users cost the same as a hundred.
    pub fn quick(axis: CityAxis) -> Self {
        CityConfig {
            axis,
            observed_hours: 6,
            reps_per_class: 2,
            sim_duration: Dur::from_secs(3),
        }
    }
}

/// Aggregated results for one flow class.
#[derive(Clone, Debug)]
pub struct ClassReport {
    /// The class.
    pub class: FlowClass,
    /// Users assigned to the class by the population partition.
    pub users: u64,
    /// Session arrivals sampled over the observation window.
    pub arrivals: u64,
    /// Arrivals in the class's busiest observed hour.
    pub peak_hour_arrivals: u64,
    /// UTC hour (window-relative) of peak arrivals.
    pub peak_hour: u32,
    /// Packets sent across the representative flows.
    pub rep_sent: u64,
    /// Packets delivered across the representative flows.
    pub rep_delivered: u64,
    /// Representative packets that met the class SLO budget.
    pub rep_slo_hits: u64,
    /// Packets lost in multi-packet bursts or outages on the direct path
    /// across the representatives.
    pub rep_burst_losses: u64,
    /// Median one-way latency (interpolated), ms.
    pub latency_p50_ms: f64,
    /// 99th-percentile one-way latency (interpolated), ms.
    pub latency_p99_ms: f64,
    /// Estimated packets sent by the whole class over the window.
    pub scaled_sent: u64,
    /// Estimated SLO-violating packets for the whole class.
    pub scaled_slo_misses: u64,
    /// Overlay cost of serving the class's peak-hour sessions, $/hour.
    pub cost_per_hour: f64,
    /// Unitless relative-bandwidth cost (α-weighted, per §3).
    pub relative_cost: f64,
}

impl ClassReport {
    /// Fraction of representative packets that met the SLO budget.
    pub fn slo_attainment(&self) -> f64 {
        if self.rep_sent == 0 {
            return 1.0;
        }
        self.rep_slo_hits as f64 / self.rep_sent as f64
    }

    /// Residual loss rate across the representatives.
    pub fn residual_loss(&self) -> f64 {
        if self.rep_sent == 0 {
            return 0.0;
        }
        1.0 - self.rep_delivered as f64 / self.rep_sent as f64
    }
}

/// The full city report: one row per class plus population-level rollups.
#[derive(Clone, Debug)]
pub struct CityReport {
    /// The axis point this report describes.
    pub axis: CityAxis,
    /// Per-class rows, in catalog order.
    pub classes: Vec<ClassReport>,
}

impl CityReport {
    /// Total session arrivals across all classes.
    pub fn total_arrivals(&self) -> u64 {
        self.classes.iter().map(|c| c.arrivals).sum()
    }

    /// Arrival-weighted SLO attainment across the city.
    pub fn slo_attainment(&self) -> f64 {
        let sent: u64 = self.classes.iter().map(|c| c.scaled_sent).sum();
        if sent == 0 {
            return 1.0;
        }
        let misses: u64 = self.classes.iter().map(|c| c.scaled_slo_misses).sum();
        1.0 - misses as f64 / sent as f64
    }

    /// Total overlay cost of the service mix, $/hour.
    pub fn cost_per_hour(&self) -> f64 {
        self.classes.iter().map(|c| c.cost_per_hour).sum()
    }

    /// FNV-1a digest over the integer-valued statistics (latencies quantised
    /// to microseconds), for byte-identity assertions across thread counts.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.axis.population);
        for c in &self.classes {
            mix(c.class.index as u64);
            mix(c.users);
            mix(c.arrivals);
            mix(c.peak_hour_arrivals);
            mix(u64::from(c.peak_hour));
            mix(c.rep_sent);
            mix(c.rep_delivered);
            mix(c.rep_slo_hits);
            mix(c.rep_burst_losses);
            mix((c.latency_p50_ms * 1_000.0).round() as u64);
            mix((c.latency_p99_ms * 1_000.0).round() as u64);
            mix(c.scaled_sent);
            mix(c.scaled_slo_misses);
        }
        h
    }
}

/// Regions whose demand a flash-crowd regime perturbs.
fn flash_regions(level: FlashCrowdLevel) -> &'static [Region] {
    match level {
        FlashCrowdLevel::None => &[],
        FlashCrowdLevel::Regional => &[Region::Europe],
        FlashCrowdLevel::Global => &Region::ALL,
    }
}

/// Relative-cost α for the coding service (coded packets per data packet).
const ALPHA: f64 = 0.1;
/// Cross-stream coding rate fed to the cost model.
const CODING_RATE: f64 = 1.0 / 16.0;

/// Builds the traffic source for one representative flow of `model`.
fn build_source(model: WorkloadModel, sim_duration: Dur) -> Box<dyn TrafficSource> {
    match model {
        WorkloadModel::Video => Box::new(VideoSource::new(VideoConfig::skype_call(sim_duration))),
        WorkloadModel::MobileVideo => Box::new(VideoSource::new(VideoConfig::background_200kbps(
            sim_duration,
        ))),
        WorkloadModel::Web => {
            // Back-to-back transfers, one per second of simulated time.
            let spec = WebTransferSpec::google_study();
            let mut entries = Vec::new();
            let transfers = (sim_duration.as_millis_f64() / 1_000.0).ceil() as usize;
            for _ in 0..transfers.max(1) {
                for (i, size) in spec.segment_sizes().into_iter().enumerate() {
                    let gap = if i == 0 {
                        Dur::from_millis(1_000)
                    } else {
                        Dur::from_micros(500)
                    };
                    entries.push((gap, size));
                }
            }
            Box::new(ScheduleSource::new(entries))
        }
        WorkloadModel::OnOffProbe => {
            // Sub-second ON/OFF cycles so a short sim sees several intervals.
            Box::new(OnOffCbrSource::scaled(600, 4))
        }
    }
}

/// Runs one city point: partitions the population, samples arrivals, runs
/// the per-class representatives, and scales statistics to the class volume.
pub fn run_city(config: &CityConfig, seed: u64) -> CityReport {
    let catalog = class_catalog();
    let weights: Vec<f64> = catalog.iter().map(|c| c.weight).collect();
    let users = partition_population(config.axis.population, &weights);

    let horizon = f64::from(config.observed_hours);
    let crowds = flash_crowds(seed, horizon, flash_regions(config.axis.flash_crowd));
    let pairs: Vec<RegionPair> = region_pair_mix().iter().map(|&(p, _)| p).collect();
    let dc_episodes = cross_dc_loss_episodes(seed, horizon, &pairs);
    let curve = DiurnalCurve::evening_peak();
    let mut arena = TraceArena::new();

    let classes = catalog
        .into_iter()
        .map(|class| {
            let mut rng = component_rng(seed, 0xC17A_0000 + class.index as u64);
            let class_users = users[class.index];

            // 1. Arrival process: Poisson counts per hour, modulated by the
            //    receiver region's diurnal clock and any flash crowds.
            let region = class.pair.to;
            let mut arrivals = 0u64;
            let mut peak_hour = 0u32;
            let mut peak_hour_arrivals = 0u64;
            for hour in 0..config.observed_hours {
                let utc = f64::from(hour);
                let demand = curve.load_factor(region, utc, config.axis.diurnal_phase_hours)
                    * flash_multiplier(&crowds, region, utc);
                let lambda = class_users as f64 * class.model.sessions_per_user_hour() * demand;
                let count = sample_poisson(&mut rng, lambda);
                arrivals += count;
                if count > peak_hour_arrivals {
                    peak_hour_arrivals = count;
                    peak_hour = hour;
                }
            }

            // 2. Representative flows at the busiest hour, each on its own
            //    calibrated path sample.
            let path_seed = rng.gen::<u64>();
            let paths = planetlab_paths_for_pair(class.pair, config.reps_per_class, path_seed);
            let overlay_loss =
                inter_dc_loss_at(&dc_episodes, class.pair, f64::from(peak_hour) + 0.5);
            let budget = class.model.slo_budget();

            let mut rep_sent = 0u64;
            let mut rep_delivered = 0u64;
            let mut rep_slo_hits = 0u64;
            let mut rep_burst_losses = 0u64;
            let mut latencies = Cdf::new();
            for path in &paths {
                let mut topology = path.topology();
                if !matches!(overlay_loss, LossSpec::None) {
                    topology = topology.inter_dc_loss(overlay_loss.clone());
                }
                if class.model == WorkloadModel::MobileVideo {
                    // Handoffs black out the direct path on top of the
                    // wide-area loss process.  The real cadence (one per
                    // ~40 s) would never land inside a short representative
                    // window, so compress the interval the same way
                    // `OnOffCbrSource::scaled` compresses ON/OFF cycles:
                    // roughly two handoffs per simulated flow.
                    let handoff = HandoffModel {
                        interval: config.sim_duration.mul_f64(0.45),
                        outage: HandoffModel::lte_typical().outage,
                    };
                    topology = topology.internet_loss(LossSpec::Compound(vec![
                        path.internet_loss(),
                        handoff.loss_spec(&mut rng),
                    ]));
                }
                let rep_seed = rng.gen::<u64>();
                let report = Scenario::new(rep_seed)
                    .with_topology(topology)
                    .with_coding(CodingParams::default())
                    .add_flow(
                        class.model.service(),
                        build_source(class.model, config.sim_duration),
                    )
                    .run(config.sim_duration);
                let flow = &report.flows[0];
                rep_sent += flow.sent() as u64;
                rep_delivered += flow.delivered() as u64;
                rep_slo_hits += flow
                    .packets
                    .iter()
                    .filter(|p| p.delivered_within(budget))
                    .count() as u64;
                latencies.extend(flow.latencies_ms());

                // Re-play the flow through an arena-recycled trace to fold
                // the *direct-path* episode structure into the class totals
                // (packets the overlay recovered still count as direct-path
                // losses here, matching `FlowReport::episode_breakdown`).
                let mut trace = arena.take();
                for p in &flow.packets {
                    trace.record_sent(p.seq, p.sent_at);
                    if let (Some(at), Some(DeliveryMethod::Direct)) = (p.delivered_at, p.method) {
                        trace.record_delivered(p.seq, at);
                    }
                }
                let bursts = trace.episode_breakdown();
                rep_burst_losses += (bursts.multi_packets + bursts.outage_packets) as u64;
                arena.put(trace);
            }

            let latency_p50_ms = latencies.quantile_interpolated(0.50).unwrap_or(0.0);
            let latency_p99_ms = latencies.quantile_interpolated(0.99).unwrap_or(0.0);

            // 3. Analytic scaling: arrivals × mean per-session packet volume.
            let reps = paths.len().max(1) as u64;
            let mean_sent = rep_sent as f64 / reps as f64;
            let scaled_sent = (arrivals as f64 * mean_sent).round() as u64;
            let miss_rate = if rep_sent == 0 {
                0.0
            } else {
                1.0 - rep_slo_hits as f64 / rep_sent as f64
            };
            let scaled_slo_misses = (scaled_sent as f64 * miss_rate).round() as u64;

            // 4. Cost of serving the class's peak hour.
            let service = class.model.service();
            let profile = WorkloadProfile {
                sessions: peak_hour_arrivals as usize,
                gb_per_session_hour: class.model.gb_per_session_hour(),
                sessions_per_thread: 150,
            };
            let cost = CostModel::new(Pricing::default())
                .estimate(service, profile, CODING_RATE, 1.0)
                .total_per_hour();

            ClassReport {
                class,
                users: class_users,
                arrivals,
                peak_hour_arrivals,
                peak_hour,
                rep_sent,
                rep_delivered,
                rep_slo_hits,
                rep_burst_losses,
                latency_p50_ms,
                latency_p99_ms,
                scaled_sent,
                scaled_slo_misses,
                cost_per_hour: cost,
                relative_cost: service.relative_cost(ALPHA) * peak_hour_arrivals as f64,
            }
        })
        .collect();

    CityReport {
        axis: config.axis,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_stable_and_indexed() {
        let catalog = class_catalog();
        assert_eq!(
            catalog.len(),
            WorkloadModel::ALL.len() * region_pair_mix().len()
        );
        for (i, class) in catalog.iter().enumerate() {
            assert_eq!(class.index, i);
            assert!(class.weight > 0.0);
        }
        assert_eq!(catalog[0].label(), "video:US-E->EU");
    }

    #[test]
    fn partition_conserves_the_population_exactly() {
        let weights: Vec<f64> = class_catalog().iter().map(|c| c.weight).collect();
        for population in [1u64, 99, 100_000, 1_000_000, 1_000_003] {
            let shares = partition_population(population, &weights);
            assert_eq!(shares.iter().sum::<u64>(), population, "pop {population}");
        }
        assert!(partition_population(1_000, &[]).is_empty());
    }

    #[test]
    fn poisson_sampler_tracks_the_mean() {
        let mut rng = component_rng(3, 0x50);
        for &lambda in &[0.5, 5.0, 50.0, 5_000.0] {
            let n = 400;
            let total: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.2,
                "λ {lambda} mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    fn tiny_config() -> CityConfig {
        CityConfig {
            observed_hours: 3,
            reps_per_class: 1,
            sim_duration: Dur::from_millis(1_500),
            ..CityConfig::quick(CityAxis::default())
        }
    }

    #[test]
    fn city_report_is_deterministic() {
        let config = tiny_config();
        let a = run_city(&config, 42);
        let b = run_city(&config, 42);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), run_city(&config, 43).digest());
    }

    #[test]
    fn city_report_covers_the_population_and_stays_finite() {
        let config = tiny_config();
        let report = run_city(&config, 7);
        assert_eq!(
            report.classes.iter().map(|c| c.users).sum::<u64>(),
            config.axis.population
        );
        assert!(report.total_arrivals() > 0);
        let slo = report.slo_attainment();
        assert!((0.0..=1.0).contains(&slo), "slo {slo}");
        assert!(report.cost_per_hour().is_finite() && report.cost_per_hour() > 0.0);
        for c in &report.classes {
            assert!(c.rep_sent > 0, "{} sent nothing", c.class.label());
            assert!(c.latency_p50_ms.is_finite() && c.latency_p50_ms >= 0.0);
            assert!(c.scaled_sent >= c.scaled_slo_misses);
        }
    }

    #[test]
    fn flash_crowds_raise_arrivals() {
        let base = tiny_config();
        let crowded = CityConfig {
            axis: CityAxis {
                flash_crowd: FlashCrowdLevel::Global,
                ..base.axis
            },
            ..base
        };
        // Same seed: the only difference is the demand multiplier, which is
        // ≥ 1 everywhere, so total arrivals cannot go down much and usually
        // go up.  (Poisson sampling consumes the same per-hour draws only
        // when λ matches, so compare in aggregate, not per class.)
        let quiet: u64 = run_city(&base, 11).total_arrivals();
        let loud: u64 = run_city(&crowded, 11).total_arrivals();
        assert!(
            loud > quiet,
            "flash crowds should add arrivals: {loud} vs {quiet}"
        );
    }
}
