//! Interactive video-conferencing traffic (the Skype case study, §6.3).
//!
//! The paper cites measurements of Skype video calls: an average frame rate
//! of 10–15 fps with each frame split into 2–5 packets, a recommended
//! bandwidth of ~1.5 Mbps for HD calls, and an application-level FEC scheme
//! that Skype runs on the direct path.  [`VideoSource`] generates that
//! pattern: frames at a constant rate, each frame burst into several
//! back-to-back packets whose sizes add up to the configured bitrate, with
//! optional extra FEC packets standing in for the application's own
//! protection.

use jqos_core::nodes::source::TrafficSource;
use netsim::Dur;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of a video-conferencing source.
#[derive(Clone, Copy, Debug)]
pub struct VideoConfig {
    /// Frames per second.
    pub fps: u32,
    /// Minimum packets per frame.
    pub min_packets_per_frame: u32,
    /// Maximum packets per frame.
    pub max_packets_per_frame: u32,
    /// Target video bitrate in bits per second.
    pub bitrate_bps: u64,
    /// Call duration.
    pub duration: Dur,
    /// Fraction of extra packets added by the application's own FEC
    /// (Skype ≈ 0.1–0.3 under loss; 0 disables it).
    pub app_fec_ratio: f64,
}

impl VideoConfig {
    /// A Skype-like video call: 12 fps, 2–5 packets per frame, ≈500 kbps —
    /// the average rate reported by the Zhang et al. profiling study the
    /// paper's testbed is based on.  (The *recommended* provisioning for HD
    /// calls is 1.5 Mbps; that constant is used by the bandwidth/cost
    /// calculations, not by the packet generator.)
    pub fn skype_call(duration: Dur) -> Self {
        VideoConfig {
            fps: 12,
            min_packets_per_frame: 2,
            max_packets_per_frame: 5,
            bitrate_bps: 500_000,
            duration,
            app_fec_ratio: 0.0,
        }
    }

    /// The same call with Skype's own FEC enabled on the direct path.
    pub fn skype_call_with_fec(duration: Dur) -> Self {
        VideoConfig {
            app_fec_ratio: 0.2,
            ..VideoConfig::skype_call(duration)
        }
    }

    /// Skype's recommended bandwidth for HD video calls (used by the §6.5
    /// uplink-feasibility and §6.6 cost calculations).
    pub const HD_RECOMMENDED_BPS: u64 = 1_500_000;

    /// A ~200 kbps background UDP flow, like the ones injected alongside
    /// Skype in §6.3 so that cross-stream coding has companions.
    pub fn background_200kbps(duration: Dur) -> Self {
        VideoConfig {
            fps: 25,
            min_packets_per_frame: 1,
            max_packets_per_frame: 1,
            bitrate_bps: 200_000,
            duration,
            app_fec_ratio: 0.0,
        }
    }

    /// Average bytes per frame implied by the bitrate and frame rate.
    pub fn bytes_per_frame(&self) -> usize {
        (self.bitrate_bps as f64 / 8.0 / self.fps as f64) as usize
    }
}

/// Frame-structured video traffic source.
#[derive(Clone, Debug)]
pub struct VideoSource {
    config: VideoConfig,
    frames_emitted: u64,
    max_frames: u64,
    pending_in_frame: u32,
    frame_packet_size: usize,
    fec_due: f64,
}

impl VideoSource {
    /// Creates a video source.
    pub fn new(config: VideoConfig) -> Self {
        assert!(config.fps > 0, "frame rate must be positive");
        assert!(
            config.min_packets_per_frame >= 1
                && config.max_packets_per_frame >= config.min_packets_per_frame,
            "invalid packets-per-frame range"
        );
        let max_frames = (config.duration.as_secs_f64() * config.fps as f64).round() as u64;
        VideoSource {
            config,
            frames_emitted: 0,
            max_frames,
            pending_in_frame: 0,
            frame_packet_size: 0,
            fec_due: 0.0,
        }
    }

    /// The average sending rate in bits per second, including app FEC.
    pub fn average_bitrate_bps(&self) -> f64 {
        self.config.bitrate_bps as f64 * (1.0 + self.config.app_fec_ratio)
    }

    /// Total number of frames this call will produce.
    pub fn total_frames(&self) -> u64 {
        self.max_frames
    }

    fn frame_interval(&self) -> Dur {
        Dur::from_millis_f64(1_000.0 / self.config.fps as f64)
    }
}

impl TrafficSource for VideoSource {
    fn next_packet(&mut self, rng: &mut SmallRng) -> Option<(Dur, usize)> {
        // Continue bursting out the current frame's packets back-to-back.
        if self.pending_in_frame > 0 {
            self.pending_in_frame -= 1;
            return Some((Dur::from_micros(200), self.frame_packet_size));
        }

        // Start the next frame.
        if self.frames_emitted >= self.max_frames {
            return None;
        }
        self.frames_emitted += 1;
        let interval = self.frame_interval();

        let bytes_per_frame = self.config.bytes_per_frame();
        // Respect both the sampled packets-per-frame range and the MTU: a
        // frame is never split into fewer packets than its bytes require.
        let sampled =
            rng.gen_range(self.config.min_packets_per_frame..=self.config.max_packets_per_frame);
        let needed = bytes_per_frame.div_ceil(1_400).max(1) as u32;
        let packets = sampled.max(needed);
        let mut total_packets = packets;
        // Application-level FEC adds a fractional extra packet per frame.
        self.fec_due += self.config.app_fec_ratio * packets as f64;
        while self.fec_due >= 1.0 {
            total_packets += 1;
            self.fec_due -= 1.0;
        }
        self.frame_packet_size = (bytes_per_frame / packets as usize).clamp(100, 1_400);
        self.pending_in_frame = total_packets - 1;
        Some((interval, self.frame_packet_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::component_rng;

    fn drain(mut src: VideoSource, seed: u64) -> Vec<(Dur, usize)> {
        let mut rng = component_rng(seed, 0);
        let mut out = vec![];
        while let Some(p) = src.next_packet(&mut rng) {
            out.push(p);
            assert!(out.len() < 1_000_000, "source failed to terminate");
        }
        out
    }

    #[test]
    fn call_produces_expected_frame_count() {
        let cfg = VideoConfig::skype_call(Dur::from_secs(10));
        let packets = drain(VideoSource::new(cfg), 1);
        // Frames are delimited by the frame-interval gaps.
        let frames = packets
            .iter()
            .filter(|(gap, _)| *gap > Dur::from_millis(10))
            .count();
        assert_eq!(frames, 120, "12 fps for 10 s");
    }

    #[test]
    fn packets_per_frame_stay_in_range() {
        let cfg = VideoConfig::skype_call(Dur::from_secs(5));
        let packets = drain(VideoSource::new(cfg), 2);
        let mut per_frame = vec![];
        let mut current = 0u32;
        for (gap, _) in &packets {
            if *gap > Dur::from_millis(10) {
                if current > 0 {
                    per_frame.push(current);
                }
                current = 1;
            } else {
                current += 1;
            }
        }
        per_frame.push(current);
        assert!(
            per_frame.iter().all(|&c| (2..=5).contains(&c)),
            "{per_frame:?}"
        );
    }

    #[test]
    fn average_bitrate_is_close_to_target() {
        let cfg = VideoConfig::skype_call(Dur::from_secs(30));
        let packets = drain(VideoSource::new(cfg), 3);
        let total_bytes: usize = packets.iter().map(|(_, s)| s).sum();
        let bps = total_bytes as f64 * 8.0 / 30.0;
        assert!(
            (400_000.0..=600_000.0).contains(&bps),
            "observed bitrate {bps}"
        );
    }

    #[test]
    fn app_fec_increases_packet_count() {
        let plain = drain(
            VideoSource::new(VideoConfig::skype_call(Dur::from_secs(20))),
            4,
        )
        .len();
        let fec = drain(
            VideoSource::new(VideoConfig::skype_call_with_fec(Dur::from_secs(20))),
            4,
        )
        .len();
        assert!(fec > plain, "fec {fec} vs plain {plain}");
        let ratio = fec as f64 / plain as f64;
        assert!((1.1..=1.35).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn background_flow_is_roughly_200kbps() {
        let cfg = VideoConfig::background_200kbps(Dur::from_secs(20));
        let packets = drain(VideoSource::new(cfg), 5);
        let total_bytes: usize = packets.iter().map(|(_, s)| s).sum();
        let bps = total_bytes as f64 * 8.0 / 20.0;
        assert!((150_000.0..=260_000.0).contains(&bps), "observed {bps}");
    }
}
