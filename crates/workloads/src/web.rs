//! Short web-transfer workload (the TCP case study, §6.4).
//!
//! The paper mirrors the Google web-latency study: a client sends a 12-byte
//! request and the server answers with a 50 KB response over a 200 ms-RTT
//! path whose loss process is bursty (first packet of a burst lost with
//! probability 0.01, subsequent ones with probability 0.5).  This module
//! holds the transfer description used by the `transport` crate's mini-TCP
//! and by the Figure 9(b) bench.

use netsim::loss::LossSpec;
use netsim::{Dur, Topology};

/// Description of one request/response web transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WebTransferSpec {
    /// Request size in bytes.
    pub request_bytes: usize,
    /// Response size in bytes.
    pub response_bytes: usize,
    /// Maximum segment size used to packetise the response.
    pub mss: usize,
}

impl WebTransferSpec {
    /// The §6.4 transfer: 12 B request, 50 KB response, 1460 B MSS.
    pub fn google_study() -> Self {
        WebTransferSpec {
            request_bytes: 12,
            response_bytes: 50 * 1024,
            mss: 1460,
        }
    }

    /// Number of response segments the transfer needs.
    pub fn response_segments(&self) -> usize {
        self.response_bytes.div_ceil(self.mss)
    }

    /// Sizes of the individual response segments (all MSS-sized except the
    /// last).
    pub fn segment_sizes(&self) -> Vec<usize> {
        let full = self.response_bytes / self.mss;
        let tail = self.response_bytes % self.mss;
        let mut sizes = vec![self.mss; full];
        if tail > 0 {
            sizes.push(tail);
        }
        sizes
    }
}

/// The emulated topology of the §6.4 experiment: 200 ms RTT between the end
/// hosts, 30 ms RTT to each DC, 200 ms RTT between the DCs, and the Google
/// burst-loss model on the direct path.
pub fn google_study_topology() -> Topology {
    Topology::lossless(
        Dur::from_millis(100), // one-way 100 ms => 200 ms RTT
        Dur::from_millis(15),  // 30 ms RTT to DC1
        Dur::from_millis(100), // 200 ms RTT between DCs
        Dur::from_millis(15),  // 30 ms RTT to DC2
    )
    .internet_loss(LossSpec::GoogleBurst {
        p_first: 0.01,
        p_next: 0.5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_study_segments_add_up() {
        let spec = WebTransferSpec::google_study();
        assert_eq!(spec.response_segments(), 36);
        let sizes = spec.segment_sizes();
        assert_eq!(sizes.len(), 36);
        assert_eq!(sizes.iter().sum::<usize>(), 50 * 1024);
        assert!(sizes[..35].iter().all(|&s| s == 1460));
        assert_eq!(sizes[35], 50 * 1024 - 35 * 1460);
    }

    #[test]
    fn exact_multiple_has_no_tail_segment() {
        let spec = WebTransferSpec {
            request_bytes: 10,
            response_bytes: 2920,
            mss: 1460,
        };
        assert_eq!(spec.segment_sizes(), vec![1460, 1460]);
    }

    #[test]
    fn topology_matches_the_emulab_setup() {
        let t = google_study_topology();
        assert_eq!(t.rtt(), Dur::from_millis(200));
        assert_eq!(t.delta_s() * 2, Dur::from_millis(30));
        assert_eq!(t.x() * 2, Dur::from_millis(200));
        assert!(matches!(t.internet.loss, LossSpec::GoogleBurst { .. }));
    }
}
