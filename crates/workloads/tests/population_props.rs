//! Property-test wall for the population engine.
//!
//! The city-scale workload generator must (1) conserve the population
//! exactly when partitioning it into flow classes, (2) produce finite,
//! non-negative demand no matter how diurnal phase, flash crowds and regions
//! combine, and (3) replay byte-identically — both call-for-call and when a
//! city grid is spread across sweep worker threads.

use jqos_core::prelude::*;
use measurements::loadcurves::{flash_crowds, flash_multiplier, DiurnalCurve};
use measurements::regions::Region;
use proptest::prelude::*;
use workloads::population::{
    class_catalog, partition_population, run_city, sample_poisson, CityConfig,
};

/// A deliberately small engine configuration so property cases stay fast;
/// population scaling is analytic, so the full axis populations still flow
/// through every code path.
fn tiny_config(axis: CityAxis) -> CityConfig {
    CityConfig {
        observed_hours: 2,
        reps_per_class: 1,
        sim_duration: Dur::from_millis(1_200),
        ..CityConfig::quick(axis)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Largest-remainder partitioning conserves the population exactly for
    /// the real class catalog at any city size.
    #[test]
    fn class_partition_conserves_the_population(population in 1u64..5_000_000) {
        let weights: Vec<f64> = class_catalog().iter().map(|c| c.weight).collect();
        let shares = partition_population(population, &weights);
        prop_assert_eq!(shares.len(), weights.len());
        prop_assert_eq!(shares.iter().sum::<u64>(), population);
    }

    /// ... and for arbitrary positive weight vectors, not just the catalog.
    #[test]
    fn arbitrary_weight_partitions_conserve_the_population(
        population in 0u64..2_000_000,
        raw_weights in proptest::collection::vec(1u32..10_000, 1..40),
    ) {
        let weights: Vec<f64> = raw_weights.iter().map(|&w| f64::from(w)).collect();
        let shares = partition_population(population, &weights);
        prop_assert_eq!(shares.iter().sum::<u64>(), population);
    }

    /// Demand (diurnal curve × flash-crowd multiplier) is finite and
    /// non-negative for every region, hour and phase, with and without
    /// flash-crowd episodes; episode parameters themselves stay sane.
    #[test]
    fn demand_is_always_finite_and_nonnegative(
        seed in 0u64..10_000,
        hour_twelfths in 0u32..(96 * 12),
        phase_twelfths in 0u32..(48 * 12),
        horizon_hours in 1u32..72,
    ) {
        let curve = DiurnalCurve::evening_peak();
        let hour = f64::from(hour_twelfths) / 12.0;
        // Map [0, 48h) onto [-24h, +24h) to cover negative phases too.
        let phase = f64::from(phase_twelfths) / 12.0 - 24.0;
        let episodes = flash_crowds(seed, f64::from(horizon_hours), &Region::ALL);
        for e in &episodes {
            prop_assert!(e.start_hour.is_finite() && e.start_hour >= 0.0);
            prop_assert!(e.duration_hours.is_finite() && e.duration_hours > 0.0);
            prop_assert!(e.multiplier.is_finite() && e.multiplier > 1.0);
        }
        for &region in &Region::ALL {
            let base = curve.load_factor(region, hour, phase);
            prop_assert!(base.is_finite() && base >= 0.0, "base {base}");
            let demand = base * flash_multiplier(&episodes, region, hour);
            prop_assert!(demand.is_finite() && demand >= 0.0, "demand {demand}");
        }
    }

    /// The Poisson sampler never goes negative or non-integer-ish even at
    /// huge rates (the normal-approximation branch clamps at zero).
    #[test]
    fn poisson_samples_are_well_formed(
        seed in 0u64..10_000,
        lambda_scaled in 0u64..50_000_000,
    ) {
        let mut rng = netsim::rng::component_rng(seed, 0x90);
        let lambda = lambda_scaled as f64 / 100.0;
        let x = sample_poisson(&mut rng, lambda);
        // u64 is non-negative by construction; the value must also stay in
        // the same ballpark as λ rather than exploding.
        prop_assert!((x as f64) <= lambda * 3.0 + 50.0, "λ {lambda} -> {x}");
    }

    /// `run_city` is a pure function of `(config, seed)`: replaying the same
    /// inputs gives digest-identical reports.
    #[test]
    fn city_reports_replay_identically(seed in 0u64..1_000, pop_k in 1u64..20) {
        let config = tiny_config(CityAxis {
            population: pop_k * 100_000,
            ..CityAxis::default()
        });
        let a = run_city(&config, seed);
        let b = run_city(&config, seed);
        prop_assert_eq!(a.digest(), b.digest());
        prop_assert_eq!(
            a.classes.iter().map(|c| c.users).sum::<u64>(),
            config.axis.population
        );
    }
}

/// A city grid spread across 4 sweep workers renders byte-identically to the
/// serial run — the determinism invariant the CLI asserts via baseline
/// replay, checked here without the harness.
#[test]
fn city_sweep_replays_identically_across_thread_counts() {
    let grid = SweepGrid::new().replicates(2).city_configs(vec![
        ("c100k", CityAxis::default()),
        (
            "c250k-fc",
            CityAxis {
                population: 250_000,
                diurnal_phase_hours: 6.0,
                flash_crowd: FlashCrowdLevel::Global,
            },
        ),
    ]);
    let suite = ExperimentSuite::new("city-props", 31, grid, |point| {
        let report = run_city(&tiny_config(point.city), point.scenario_seed());
        let digest = report.digest();
        netsim::stats::PointStats::new("")
            .metric("arrivals", report.total_arrivals() as f64)
            .metric("slo", report.slo_attainment())
            .metric("digest_hi", (digest >> 32) as u32 as f64)
            .metric("digest_lo", digest as u32 as f64)
    });
    let serial = suite.run(1);
    let parallel = suite.run(4);
    assert_eq!(serial.digest(), parallel.digest());
    assert_eq!(serial.report, parallel.report);
    // The runs did real work: every point sampled arrivals.
    for p in serial.report.points() {
        assert!(p.get_metric("arrivals").unwrap_or(0.0) > 0.0);
        let slo = p.get_metric("slo").unwrap_or(-1.0);
        assert!((0.0..=1.0).contains(&slo));
    }
}
