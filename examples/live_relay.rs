//! Live loopback deployment of the sharded J-QoS relay (tokio prototype).
//!
//! Starts a 2-shard relay on real UDP sockets, registers a handful of flows
//! over the wire — each with a latency budget, so the relay's admission path
//! runs the same service selection as the simulator — and drives paced
//! traffic with direct-path loss injection.  Caching flows recover their
//! losses from the shard's cache ring via NACKs; coding flows reconstruct
//! them from parity; forwarding flows ride the overlay entirely; and one
//! deliberately infeasible budget is rejected with a reason code.
//!
//! Run with: `cargo run --example live_relay`

use std::time::{Duration, Instant};

use jqos::net::{FlowSpec, LoadWorker, Relay, RelayConfig};

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() -> std::io::Result<()> {
    let mut relay = Relay::bind("127.0.0.1:0", RelayConfig::default()).await?;
    relay.start();
    let control = relay.control_addr()?;
    println!("relay control socket on {control}");
    println!("shard dataplane sockets: {:?}", relay.shard_addrs());

    let mut worker = LoadWorker::new(control, Instant::now(), 64)?;
    // (flow, budget ms, direct-path drop period): budgets steer admission.
    for (flow, budget_ms, drop_every) in [
        (1u32, 150u32, Some(8)), // coding
        (2, 100, Some(4)),       // caching
        (3, 91, None),           // forwarding
        (4, 60, None),           // infeasible: rejected
    ] {
        worker.add_flow(FlowSpec {
            flow,
            budget_ms,
            loss_tolerant: false,
            drop_every,
        });
    }
    worker.register(Duration::from_secs(5))?;
    for flow in worker.flow_ids() {
        let view = worker.flow_view(flow).unwrap();
        match view.rejected {
            Some(reason) => println!("flow {flow}: rejected ({reason})"),
            None => println!("flow {flow}: admitted as {:?}", view.service.unwrap()),
        }
    }

    println!();
    println!("pacing 48 packets per admitted flow with loss injection...");
    worker.run_paced(48, Duration::from_millis(5), Duration::from_millis(500))?;

    println!();
    for flow in worker.flow_ids() {
        let view = worker.flow_view(flow).unwrap();
        if view.service.is_none() {
            continue;
        }
        println!(
            "flow {flow} ({:?}): {}/{} delivered, {} cache-recovered, {} parity-reconstructed",
            view.service.unwrap(),
            view.delivered,
            view.sent,
            view.recovered,
            view.reconstructed
        );
    }

    let metrics = relay.shutdown().await;
    let totals = metrics.totals();
    println!();
    println!(
        "relay: {} data packets over {} shards; {} forwarded, {} cached, {} batches encoded",
        totals.data_rx,
        metrics.shards.len(),
        totals.forwarded,
        totals.cached,
        totals.batches_encoded
    );
    println!(
        "       {} recoveries + {} parity shards served; {} flows admitted, {} rejected",
        totals.recoveries_served,
        totals.parity_served,
        metrics.admitted,
        metrics.rejected_budget + metrics.rejected_shard_full
    );
    Ok(())
}
