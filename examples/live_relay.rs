//! Live loopback deployment of the J-QoS caching service (tokio prototype).
//!
//! Starts a DC relay, a receiver and a sender on real UDP sockets bound to
//! 127.0.0.1.  The sender drops one in four packets on the "Internet" path;
//! the receiver detects the gaps and recovers the missing packets from the
//! relay, exactly as the simulator's caching service does.
//!
//! Run with: `cargo run --example live_relay`

use std::sync::Arc;
use std::time::Duration;

use jqos_net::{DcRelay, LiveReceiver, LiveSender};

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() -> std::io::Result<()> {
    // The DC relay (caching service).
    let relay = Arc::new(DcRelay::bind("127.0.0.1:0", None).await?);
    let relay_addr = relay.local_addr()?;
    println!("DC relay listening on {relay_addr}");
    let relay_task = {
        let relay = relay.clone();
        tokio::spawn(async move { relay.run().await })
    };

    // The receiving end host.
    let mut receiver = LiveReceiver::bind("127.0.0.1:0", relay_addr).await?;
    let receiver_addr = receiver.local_addr()?;
    println!("receiver listening on {receiver_addr}");

    // The sending end host: 200 packets, dropping every 4th on the direct path.
    let mut sender = LiveSender::new(receiver_addr, Some(relay_addr), 1).await?;
    let send_task = tokio::spawn(async move {
        for seq in 0..200u64 {
            let drop_direct = seq % 4 == 3;
            sender
                .send(format!("frame {seq}").as_bytes(), drop_direct)
                .await
                .expect("send");
            tokio::time::sleep(Duration::from_millis(5)).await;
        }
    });

    receiver.run_until_idle(Duration::from_millis(500)).await?;
    send_task.await.expect("sender task");
    relay_task.abort();

    let stats = receiver.stats();
    let relay_stats = relay.stats();
    println!();
    println!("direct-path deliveries : {}", stats.direct);
    println!("NACKs sent             : {}", stats.nacks_sent);
    println!("recovered via the DC   : {}", stats.recovered);
    println!(
        "relay cache size       : {} packets cached, {} recoveries served",
        relay_stats.cached, relay_stats.recoveries
    );
    let complete = (0..199u64).filter(|s| receiver.has(1, *s)).count();
    println!("packets present at app : {complete}/199 (the trailing drop cannot be gap-detected)");
    Ok(())
}
