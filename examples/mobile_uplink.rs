//! The mobile-networks case study (§6.5) as a runnable example.
//!
//! Checks whether a phone on an LTE uplink can afford to duplicate its video
//! stream to the cloud (bandwidth and battery), and runs a short call over
//! the cellular topology to confirm recovery still works despite the higher
//! and more variable latency to the nearest DC.
//!
//! Run with: `cargo run --release --example mobile_uplink`

use jqos_core::prelude::*;
use workloads::mobile::MobileProfile;
use workloads::video::{VideoConfig, VideoSource};

fn main() {
    println!("Mobile case study: duplicating a video call from an LTE uplink\n");

    for (label, profile) in [
        ("typical LTE (5 Mbps uplink)", MobileProfile::lte_typical()),
        (
            "constrained LTE (2 Mbps uplink)",
            MobileProfile::lte_constrained(),
        ),
    ] {
        let fits = profile.duplication_fits(VideoConfig::HD_RECOMMENDED_BPS);
        let battery = profile.duplication_battery_cost_mah(VideoConfig::HD_RECOMMENDED_BPS, 20.0);
        println!("  {label}:");
        println!(
            "    duplicating a 1.5 Mbps HD call needs 3.0 Mbps of uplink -> {}",
            if fits {
                "fits"
            } else {
                "does not fit; duplicate selectively instead"
            }
        );
        println!("    extra battery over a 20-minute call: {battery:.1} mAh");
        println!(
            "    RTT to the nearest cloud region: median {:.0} ms, p90 {:.0} ms",
            profile.median_dc_latency.as_millis_f64() * 2.0,
            profile.p90_dc_latency.as_millis_f64() * 2.0
        );
    }

    println!("\nRunning a 40 s call over the cellular topology with a 10 s outage...");
    let lte = MobileProfile::lte_typical();
    let duration = Dur::from_secs(40);
    let topology = lte.topology(LossSpec::Compound(vec![
        LossSpec::bursty(0.01, 4.0),
        LossSpec::Outage(vec![(Time::from_secs(18), Time::from_secs(28))]),
    ]));
    let mut scenario = Scenario::new(65)
        .with_topology(topology)
        .with_coding(CodingParams::skype_case_study())
        .add_flow(
            ServiceKind::Coding,
            Box::new(VideoSource::new(VideoConfig::skype_call_with_fec(duration))),
        );
    for _ in 0..3 {
        scenario = scenario.add_flow_with_path(
            ServiceKind::Coding,
            Box::new(VideoSource::new(VideoConfig::background_200kbps(duration))),
            LinkSpec::symmetric(Dur::from_millis(70)).loss(LossSpec::Bernoulli(0.002)),
        );
    }
    let report = scenario.run(duration + Dur::from_secs(2));
    let flow = &report.flows[0];
    println!(
        "  lost {} packets on the direct path, recovered {} ({:.0}%) through the nearby DC",
        flow.lost_on_direct(),
        flow.recovered(),
        flow.recovery_rate() * 100.0
    );
    println!(
        "  end-to-end delivery: {:.1}%   cloud copies sent over the uplink: {}",
        100.0 * flow.delivered() as f64 / flow.sent().max(1) as f64,
        flow.cloud_copies
    );
    println!("\nConclusion (as in §6.5): duplication is feasible on a typical LTE uplink, its");
    println!("battery cost is negligible, and recovery still works despite cellular latencies —");
    println!("but constrained uplinks should fall back to selective duplication.");
}
