//! Hybrid multicast and mobility: the caching-service use cases of Figure 3.
//!
//! * **Hybrid multicast** (Figure 3(d)) — a sender streams to three receivers
//!   over the best-effort Internet and sends one copy to the DC near them;
//!   any receiver that misses a packet pulls it from the cache instead of
//!   asking the distant sender.
//! * **Mobility** (Figure 3(e)) — a receiver that is offline while the sender
//!   transmits pulls the cached packets when it comes back online.
//!
//! Run with: `cargo run --example multicast_cache`

use jqos_core::prelude::*;

fn hybrid_multicast() {
    println!("--- hybrid multicast: three receivers, lossy Internet paths, one cached copy ---");
    // Three unicast flows from the same logical sender; each receiver has its
    // own lossy direct path, and the cloud copy is cached at DC2.
    let mut scenario =
        Scenario::new(11).with_topology(Topology::wide_area(LossSpec::bursty(0.02, 3.0)));
    for i in 0..3 {
        scenario = scenario.add_flow_with_path(
            ServiceKind::Caching,
            Box::new(CbrSource::new(Dur::from_millis(20), 600, 800)),
            LinkSpec::symmetric(Dur::from_millis(70 + i * 5)).loss(LossSpec::bursty(0.02, 3.0)),
        );
    }
    let report = scenario.run(Dur::from_secs(20));
    for flow in &report.flows {
        println!(
            "  receiver {:?}: lost {:3} on its Internet path, recovered {:3} from the cache ({:.0}%)",
            flow.flow,
            flow.lost_on_direct(),
            flow.recovered(),
            flow.recovery_rate() * 100.0
        );
    }
    println!(
        "  DC2 served {} cache recoveries for {} cached packets\n",
        report.dc2.cache_recoveries, report.dc2.cached
    );
}

fn mobility() {
    println!("--- mobility: the receiver is offline during the transmission ---");
    // The direct path is completely down while the sender transmits (the
    // receiver is off the network); every packet has to come from the cache.
    let offline = LossSpec::Outage(vec![(Time::ZERO, Time::from_secs(30))]);
    let report = Scenario::new(12)
        .with_topology(Topology::wide_area(offline))
        .add_flow(
            ServiceKind::Caching,
            Box::new(CbrSource::new(Dur::from_millis(50), 400, 200)),
        )
        .run(Dur::from_secs(40));
    let flow = &report.flows[0];
    println!(
        "  sent {} packets while the receiver was unreachable; {} were later retrieved from the DC cache",
        flow.sent(),
        flow.recovered()
    );
    println!(
        "  end-to-end delivery after reconnecting: {:.1}%\n",
        100.0 * flow.delivered() as f64 / flow.sent().max(1) as f64
    );
}

fn main() {
    hybrid_multicast();
    mobility();
    println!("Both use cases run on the same caching service: short-term packet storage at");
    println!("the DC near the receivers, with receiver-driven pulls (§3.2).");
}
