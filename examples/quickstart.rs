//! Quickstart: one lossy wide-area flow, three J-QoS services compared.
//!
//! Builds the canonical topology of the paper (Figure 2) — a sender and a
//! receiver joined by a lossy best-effort Internet path plus a two-DC cloud
//! overlay — and runs the same constant-bitrate stream with the Internet
//! only, then with the caching service, then with the coding service.
//!
//! Run with: `cargo run --example quickstart`

use jqos_core::prelude::*;

fn run(service: ServiceKind, label: &str) {
    // 1% bursty loss on the Internet path, clean cloud paths.
    let topology = Topology::wide_area(LossSpec::bursty(0.01, 4.0));

    // The register(...) API of §3.5: given a latency budget, J-QoS picks the
    // cheapest service that meets it (printed for context).
    let selector = ServiceSelector::new(PathDelays::symmetric(
        topology.y(),
        topology.delta_s(),
        topology.x(),
        topology.delta_r(),
    ));
    let selection = selector.select(Registration {
        latency_budget: Dur::from_millis(150),
        loss_tolerant: false,
    });

    // Four concurrent flows so the coding service has cross-stream companions.
    let mut scenario = Scenario::new(42).with_topology(topology);
    for _ in 0..4 {
        scenario = scenario.add_flow(
            service,
            Box::new(CbrSource::new(Dur::from_millis(20), 512, 1_000)),
        );
    }
    let report = scenario.run(Dur::from_secs(25));
    let flow = &report.flows[0];

    println!("--- {label} ---");
    println!(
        "  sent {:5}   delivered {:5}   lost on direct path {:4}   recovered {:4}",
        flow.sent(),
        flow.delivered(),
        flow.lost_on_direct(),
        flow.recovered()
    );
    println!(
        "  residual loss {:.3}%   recovery rate {:.1}%   cloud copies {}   coded packets {}",
        flow.residual_loss_rate() * 100.0,
        flow.recovery_rate() * 100.0,
        flow.cloud_copies,
        report.encoder.coded_packets
    );
    println!(
        "  (for a 150 ms budget on this path the selector would pick: {})",
        selection.service
    );
    println!();
}

fn main() {
    println!("J-QoS quickstart: 1% bursty loss on a 150 ms-RTT intercontinental path\n");
    run(ServiceKind::InternetOnly, "best-effort Internet only");
    run(ServiceKind::Caching, "J-QoS caching service");
    run(ServiceKind::Coding, "J-QoS coding service (CR-WAN)");
    println!("The caching and coding services repair almost all direct-path losses;");
    println!("coding does so while sending only a fraction of the traffic across the cloud WAN.");
}
