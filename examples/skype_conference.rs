//! The Skype video-conferencing case study (§6.3) as a runnable example.
//!
//! A video call crosses a wide-area path that suffers a 20-second outage.
//! The example compares the user-visible quality (PSNR, via the `qoe` model)
//! of running the call over the plain Internet, over the forwarding service,
//! and over CR-WAN with three background flows as coding companions.
//!
//! Run with: `cargo run --release --example skype_conference`

use jqos_core::prelude::*;
use qoe::{fraction_below, frames_from_packet_flags, PsnrModel};
use workloads::video::{VideoConfig, VideoSource};

const CALL_SECS: u64 = 60;
const PACKETS_PER_FRAME: usize = 3;

fn call(service: ServiceKind) -> (f64, f64, u64) {
    let outage = LossSpec::Compound(vec![
        LossSpec::Bernoulli(0.001),
        LossSpec::Outage(vec![(Time::from_secs(25), Time::from_secs(45))]),
    ]);
    let duration = Dur::from_secs(CALL_SECS);
    let mut scenario = Scenario::new(7)
        .with_topology(Topology::wide_area(outage))
        .with_coding(CodingParams::skype_case_study())
        .add_flow(
            service,
            Box::new(VideoSource::new(VideoConfig::skype_call_with_fec(duration))),
        );
    for _ in 0..3 {
        scenario = scenario.add_flow_with_path(
            ServiceKind::Coding,
            Box::new(VideoSource::new(VideoConfig::background_200kbps(duration))),
            LinkSpec::symmetric(Dur::from_millis(70)).loss(LossSpec::Bernoulli(0.002)),
        );
    }
    let report = scenario.run(duration + Dur::from_secs(2));
    let flow = &report.flows[0];

    let flags: Vec<bool> = flow
        .packets
        .iter()
        .map(|p| p.delivered_within(Dur::from_millis(400)))
        .collect();
    let frames = frames_from_packet_flags(&flags, PACKETS_PER_FRAME);
    let scores = PsnrModel::default().score_frames(&frames, 7);
    let mean = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
    (
        mean,
        fraction_below(&scores, 30.0),
        report.encoder.coded_bytes,
    )
}

fn main() {
    println!("Skype case study: {CALL_SECS}s call with a 20s outage in the middle\n");
    println!(
        "  {:<26} {:>10} {:>14} {:>16}",
        "delivery", "mean PSNR", "bad frames", "inter-DC bytes"
    );
    for (label, service) in [
        ("Internet only", ServiceKind::InternetOnly),
        ("forwarding service", ServiceKind::Forwarding),
        ("coding service (CR-WAN)", ServiceKind::Coding),
    ] {
        let (psnr, bad, coded) = call(service);
        println!(
            "  {:<26} {:>10.1} {:>13.1}% {:>16}",
            label,
            psnr,
            bad * 100.0,
            coded
        );
    }
    println!("\nForwarding masks the outage completely; CR-WAN recovers most frames while");
    println!("sending only coded packets (not the full stream) across the cloud WAN.");
}
