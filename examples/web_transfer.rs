//! The TCP web-transfer case study (§6.4) as a runnable example.
//!
//! Runs a batch of 50 KB request/response transfers over a 200 ms-RTT path
//! with the Google study's bursty loss model and shows how J-QoS duplication
//! trims the flow-completion-time tail caused by retransmission timeouts.
//!
//! Run with: `cargo run --release --example web_transfer`

use netsim::Dur;
use transport::harness::{run_web_transfers, TransferBatch, WebExperimentConfig};
use transport::minitcp::JqosAssist;

fn main() {
    let transfers = 400;
    println!("TCP case study: {transfers} transfers of 50 KB over a 200 ms RTT path");
    println!("with bursty loss (p_first = 1%, p_next = 50%)\n");
    println!(
        "  {:<26} {:>8} {:>8} {:>8} {:>8} {:>12}",
        "configuration", "p50 (s)", "p90 (s)", "p99 (s)", "max (s)", "timeouts"
    );

    let modes = [
        ("plain TCP", JqosAssist::None),
        (
            "TCP + J-QoS full dup",
            JqosAssist::FullDuplication {
                extra_delay: Dur::from_millis(60),
            },
        ),
        (
            "TCP + SYN-ACK dup only",
            JqosAssist::SelectiveSynAck {
                extra_delay: Dur::from_millis(60),
            },
        ),
    ];

    let mut p99_internet = None;
    for (label, assist) in modes {
        let config = WebExperimentConfig::google_study(transfers, assist, 5);
        let results = run_web_transfers(&config);
        let p99 = results.as_slice().fct_quantile(0.99);
        if p99_internet.is_none() {
            p99_internet = Some(p99);
        }
        println!(
            "  {:<26} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>12}",
            label,
            results.as_slice().fct_quantile(0.50),
            results.as_slice().fct_quantile(0.90),
            p99,
            results.as_slice().fct_quantile(1.0),
            results.iter().map(|r| r.timeouts).sum::<u64>()
        );
    }

    println!("\nPlain TCP's tail is driven by SYN-ACK and tail-segment losses that force");
    println!("retransmission timeouts; recovering those segments through the cloud lets the");
    println!("client acknowledge them immediately and keeps the tail near the loss-free case.");
}
