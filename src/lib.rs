//! # jqos — umbrella crate for the J-QoS reproduction
//!
//! Re-exports the workspace crates so examples and downstream users can pull
//! everything through a single dependency:
//!
//! * [`core`] (`jqos-core`) — the J-QoS framework: forwarding, caching and
//!   coding (CR-WAN) services, recovery protocol, service selection, cost
//!   model and the scenario harness;
//! * [`netsim`] — the discrete-event network simulator substrate;
//! * [`erasure`] — the Reed–Solomon erasure codec;
//! * [`transport`] — the mini-TCP used by the web-transfer case study;
//! * [`workloads`] — CBR / video / web / mobile traffic models;
//! * [`measurements`] — synthetic RIPE-Atlas / PlanetLab datasets;
//! * [`qoe`] — the PSNR model for the video case study;
//! * [`net`] (`jqos-net`) — the tokio-based live UDP prototype.

pub use erasure;
pub use jqos_core as core;
pub use jqos_net as net;
pub use measurements;
pub use netsim;
pub use qoe;
pub use transport;
pub use workloads;

/// Everything needed to build and run a J-QoS scenario.
pub mod prelude {
    pub use jqos_core::prelude::*;
}
