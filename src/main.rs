//! The `jqos` umbrella CLI.
//!
//! * `jqos` — prints the workspace layout and how to regenerate every figure.
//! * `jqos sweep --fig <id> [--threads N] [--no-baseline]` — runs one
//!   figure's `ExperimentSuite` grid on N worker threads, printing per-point
//!   and aggregate wall-clock plus (unless `--no-baseline`) a 1-thread replay
//!   whose report is asserted byte-identical to the parallel run.
//! * `jqos loadgen [--flows N] [--shards a,b,c] [--workers W] [--blast-ms T]`
//!   — drives the live sharded relay with thousands of loopback flows and
//!   writes `BENCH_net_loadgen.json`.

use std::process::ExitCode;
use std::time::Duration;

fn print_help() {
    println!("J-QoS: Judicious QoS using Cloud Overlays — Rust reproduction");
    println!();
    println!("Usage:");
    println!("  jqos                     this overview");
    println!("  jqos sweep --fig <id> [--threads N] [--no-baseline]");
    println!("  jqos sweep --list");
    println!("  jqos loadgen [--flows N] [--shards a,b,c] [--workers W] [--blast-ms T]");
    println!();
    println!("Examples (cargo run --example <name>):");
    println!("  quickstart        compare Internet / caching / coding on a lossy WAN path");
    println!("  skype_conference  video-conferencing QoE during an outage (§6.3)");
    println!("  web_transfer      TCP flow-completion-time tail (§6.4)");
    println!("  multicast_cache   hybrid multicast + mobility use cases (Fig. 3)");
    println!("  mobile_uplink     cellular feasibility study (§6.5)");
    println!("  live_relay        tokio UDP relay + endpoints on loopback (§5 prototype)");
    println!();
    println!("Figure regeneration (cargo run --release -p jqos-bench --bin <name>):");
    println!("  fig7_feasibility, fig8_crwan, fig9a_skype, fig9b_tcp, fig10_scaling,");
    println!(
        "  sec65_mobile, sec66_cost, fleet_sweep, city_sweep   (set JQOS_QUICK=1 for a fast pass)"
    );
    println!();
    println!("Parallel sweeps (same suites, via this CLI):");
    println!(
        "  jqos sweep --fig {}   (JQOS_QUICK=1 for a fast pass)",
        jqos_bench::figures::FIGURE_IDS.join(" | ")
    );
    println!();
    println!("Criterion benches: cargo bench -p jqos-bench");
}

fn sweep(args: &[String]) -> ExitCode {
    let mut fig: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut baseline = true;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fig" | "-f" => match iter.next() {
                Some(v) => fig = Some(v.clone()),
                None => {
                    eprintln!("error: --fig requires a figure id");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" | "-t" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("error: --threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--no-baseline" => baseline = false,
            "--list" | "-l" => {
                println!("available figure ids:");
                for id in jqos_bench::figures::FIGURE_IDS {
                    println!("  {id}");
                }
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown sweep argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(fig) = fig else {
        eprintln!("error: sweep needs --fig <id> (try 'jqos sweep --list')");
        return ExitCode::FAILURE;
    };
    let threads = threads.unwrap_or_else(jqos_core::default_threads);
    // The baseline replay doubles as the determinism proof; the figure
    // harness treats this switch as authoritative (set before any sweep
    // worker threads exist), with quick mode as the unset-default.
    std::env::set_var("JQOS_SWEEP_BASELINE", if baseline { "1" } else { "0" });
    println!("running figure {fig} sweep on {threads} worker thread(s)");
    if jqos_bench::figures::run_figure(&fig, threads) {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: unknown figure id '{fig}' (try 'jqos sweep --list')");
        ExitCode::FAILURE
    }
}

fn loadgen(args: &[String]) -> ExitCode {
    let mut cfg = jqos_bench::netload::NetloadConfig::from_env();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--flows" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => cfg.flows = n,
                _ => {
                    eprintln!("error: --flows requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => cfg.workers = n,
                _ => {
                    eprintln!("error: --workers requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => {
                let parsed: Option<Vec<usize>> = iter
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(counts) if !counts.is_empty() && counts.iter().all(|&c| c >= 1) => {
                        cfg.shard_counts = counts;
                    }
                    _ => {
                        eprintln!("error: --shards requires a comma list like 1,2,4");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--blast-ms" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => cfg.blast = Duration::from_millis(ms),
                _ => {
                    eprintln!("error: --blast-ms requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown loadgen argument '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }
    jqos_bench::netload::run_with(cfg);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print_help();
            ExitCode::SUCCESS
        }
        Some("sweep") => sweep(&args[1..]),
        Some("loadgen") => loadgen(&args[1..]),
        Some(other) => {
            eprintln!("error: unknown subcommand '{other}'");
            print_help();
            ExitCode::FAILURE
        }
    }
}
