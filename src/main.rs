//! A tiny CLI that prints the workspace layout and how to regenerate every
//! figure of the paper.  The real entry points are the examples and the
//! `jqos-bench` binaries.

fn main() {
    println!("J-QoS: Judicious QoS using Cloud Overlays — Rust reproduction");
    println!();
    println!("Examples (cargo run --example <name>):");
    println!("  quickstart        compare Internet / caching / coding on a lossy WAN path");
    println!("  skype_conference  video-conferencing QoE during an outage (§6.3)");
    println!("  web_transfer      TCP flow-completion-time tail (§6.4)");
    println!("  multicast_cache   hybrid multicast + mobility use cases (Fig. 3)");
    println!("  mobile_uplink     cellular feasibility study (§6.5)");
    println!("  live_relay        tokio UDP relay + endpoints on loopback (§5 prototype)");
    println!();
    println!("Figure regeneration (cargo run --release -p jqos-bench --bin <name>):");
    println!("  fig7_feasibility, fig8_crwan, fig9a_skype, fig9b_tcp, fig10_scaling,");
    println!("  sec65_mobile, sec66_cost   (set JQOS_QUICK=1 for a fast pass)");
    println!();
    println!("Criterion benches: cargo bench -p jqos-bench");
}
