//! Integration tests spanning the whole workspace: simulator + J-QoS core +
//! workloads + measurements, exercised the same way the figure binaries do.

use jqos::core::coding::params::CodingParams;
use jqos::core::nodes::receiver::DeliveryMethod;
use jqos::prelude::*;
use jqos_bench::stress::{run_stress, run_stress_on_seed_engine, StressConfig};
use measurements::planetlab::planetlab_paths;
use netsim::prelude::QueueKind;
use proptest::prelude::*;
use workloads::cbr::OnOffCbrSource;
use workloads::video::{VideoConfig, VideoSource};

/// The headline CR-WAN behaviour on a PlanetLab-like path: most direct-path
/// losses are recovered through the cloud, and recovery is fast relative to
/// the RTT.
#[test]
fn crwan_recovers_most_losses_on_a_planetlab_path() {
    let path = &planetlab_paths(2020)[3];
    let topology = Topology::lossless(
        Dur::from_millis_f64(path.y_ms),
        Dur::from_millis_f64(path.delta_s_ms),
        Dur::from_millis_f64(path.x_ms),
        Dur::from_millis_f64(path.delta_r_ms),
    )
    .internet_loss(LossSpec::bursty(0.01, 4.0));

    let mut scenario = Scenario::new(100)
        .with_topology(topology)
        .with_coding(CodingParams::planetlab_defaults());
    for _ in 0..6 {
        scenario = scenario.add_flow(
            ServiceKind::Coding,
            Box::new(CbrSource::new(Dur::from_millis(20), 512, 1_500)),
        );
    }
    let report = scenario.run(Dur::from_secs(40));

    let lost: usize = report.flows.iter().map(|f| f.lost_on_direct()).sum();
    assert!(
        lost > 50,
        "the lossy path should drop a noticeable number of packets, got {lost}"
    );
    assert!(
        report.overall_recovery_rate() > 0.75,
        "CR-WAN should recover most losses, got {:.2}",
        report.overall_recovery_rate()
    );
    assert!(
        report.dc2.coop_recovered > 0,
        "recovery must go through cooperative decoding"
    );
    // Judicious use of the cloud: far less WAN traffic than full duplication.
    assert!(
        report.coding_overhead() < 0.9,
        "coding overhead should stay below duplication, got {:.2}",
        report.coding_overhead()
    );
}

/// The forwarding service masks a complete outage of the direct path, which
/// is the property behind the Skype case study's "Fwd" curve.
#[test]
fn forwarding_masks_an_outage_end_to_end() {
    let outage = LossSpec::Outage(vec![(Time::from_secs(3), Time::from_secs(20))]);
    let report = Scenario::new(101)
        .with_topology(Topology::wide_area(outage))
        .add_flow(
            ServiceKind::Forwarding,
            Box::new(VideoSource::new(VideoConfig::skype_call(Dur::from_secs(
                25,
            )))),
        )
        .run(Dur::from_secs(27));
    let flow = &report.flows[0];
    assert_eq!(
        flow.unrecovered(),
        0,
        "every packet must arrive via the overlay"
    );
    assert!(flow.delivered_cloud() > 100);
    // And the cloud-forwarded copies are genuinely attributed to the overlay.
    assert!(flow
        .packets
        .iter()
        .any(|p| p.method == Some(DeliveryMethod::CloudForwarded)));
}

/// Service selection picks the cheapest service that meets the latency
/// budget, across the whole RIPE-Atlas-style path set.
#[test]
fn service_selection_is_monotone_in_the_budget() {
    for path in measurements::ripe::ripe_atlas_paths(50, 5) {
        let delays = PathDelays {
            y: Dur::from_millis_f64(path.y_ms),
            delta_s: Dur::from_millis_f64(path.delta_s_ms),
            x: Dur::from_millis_f64(path.x_ms),
            delta_r: Dur::from_millis_f64(path.delta_r_ms),
            delta_median: Dur::from_millis_f64(path.delta_median_ms),
        };
        let selector = ServiceSelector::new(delays);
        let mut previous_cost = f64::INFINITY;
        // As the budget grows the selected service can only get cheaper.
        for budget_ms in [40u64, 80, 120, 200, 400] {
            let selection = selector.select(Registration {
                latency_budget: Dur::from_millis(budget_ms),
                loss_tolerant: false,
            });
            let cost = selection.service.relative_cost(0.33);
            assert!(
                cost <= previous_cost + 1e-12,
                "budget {budget_ms} ms picked a more expensive service ({})",
                selection.service
            );
            previous_cost = cost;
        }
    }
}

/// The ON/OFF CBR workload and the scenario harness together produce
/// reproducible reports for a fixed seed.
#[test]
fn scenario_reports_are_deterministic() {
    let run = || {
        let report = Scenario::new(77)
            .with_topology(Topology::wide_area(LossSpec::Bernoulli(0.02)))
            .add_flow(
                ServiceKind::Caching,
                Box::new(OnOffCbrSource::scaled(300, 1)),
            )
            .run(Dur::from_secs(10));
        let f = &report.flows[0];
        (f.sent(), f.delivered(), f.recovered(), f.nacks_sent)
    };
    assert_eq!(run(), run());
}

/// The full `ScenarioReport` — every per-packet outcome, every counter — is
/// identical across two runs of the same seed, not just the headline
/// aggregates.
#[test]
fn identical_seeds_yield_identical_scenario_reports() {
    let run = |seed: u64| {
        let mut scenario = Scenario::new(seed)
            .with_topology(Topology::wide_area(LossSpec::bursty(0.02, 3.0)))
            .with_coding(CodingParams::planetlab_defaults());
        for service in [
            ServiceKind::Coding,
            ServiceKind::Coding,
            ServiceKind::Caching,
        ] {
            scenario = scenario.add_flow(
                service,
                Box::new(CbrSource::new(Dur::from_millis(20), 512, 300)),
            );
        }
        scenario.run(Dur::from_secs(8))
    };
    assert_eq!(run(123), run(123));
    assert_ne!(run(123), run(124));
}

/// The tentpole guarantee of the sweep harness: an `ExperimentSuite` grid
/// executed on N worker threads produces a byte-identical `SweepReport` to a
/// 1-thread run of the same master seed.
#[test]
fn experiment_suite_is_byte_identical_across_thread_counts() {
    let grid = SweepGrid::new()
        .seeds([5, 6])
        .loss_models(vec![
            ("bern2", LossSpec::Bernoulli(0.02)),
            ("burst", LossSpec::bursty(0.01, 4.0)),
        ])
        .service_mixes(vec![
            ("caching", vec![ServiceKind::Caching]),
            ("coding4", vec![ServiceKind::Coding; 4]),
        ]);
    let suite = ExperimentSuite::new("e2e-determinism", 2024, grid, |point| {
        let mut scenario = Scenario::new(point.scenario_seed())
            .with_topology(Topology::wide_area(point.loss.clone()))
            .with_coding(point.coding);
        for service in &point.mix {
            scenario = scenario.add_flow(
                *service,
                Box::new(CbrSource::new(Dur::from_millis(25), 400, 120)),
            );
        }
        let report = scenario.run(Dur::from_secs(4));
        netsim::stats::PointStats::new("")
            .metric("recovery_rate", report.overall_recovery_rate())
            .metric("residual_loss", report.overall_residual_loss())
            .metric("dc2_nacks", report.dc2.nacks as f64)
            .series(
                "latencies_ms",
                report.flows.iter().flat_map(|f| f.latencies_ms()).collect(),
            )
    });
    assert_eq!(suite.point_count(), 8);

    let serial = suite.run(1);
    let parallel = suite.run(4);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    // Byte-identical deterministic output, equal structured reports, and a
    // replayable parallel run.
    assert_eq!(serial.digest(), parallel.digest());
    assert_eq!(serial.report, parallel.report);
    assert_eq!(parallel.digest(), suite.run(4).digest());
    // Timing is reported per point and in aggregate (values are free to
    // differ between runs; their shape is not).
    assert_eq!(serial.point_wall_ms.len(), 8);
    assert!(serial.total_wall_ms > 0.0);
    assert!(serial.busy_ms() > 0.0);
}

/// The stress topology's replay guarantee, end to end: one master seed must
/// produce the identical `StressReport` with intra-point parallelism off and
/// on, on both scheduler backends of the reworked engine, and on the
/// vendored replica of the seed engine.  The digest is pinned as a golden
/// value — it only uses integer counters (constant delays, integer-permille
/// Bernoulli loss), so it is stable across platforms; a change here means
/// the simulation semantics changed, not just the scheduler.
#[test]
fn stress_topology_replays_identically_across_engines_and_threads() {
    const MASTER_SEED: u64 = 0x4A51_6F53_5354_5253; // matches sweep_stress
    let calendar = StressConfig::quick();
    let heap = calendar.with_queue(QueueKind::Heap);

    let serial = run_stress(&calendar, MASTER_SEED, 1);
    assert_eq!(
        serial,
        run_stress(&calendar, MASTER_SEED, 4),
        "intra-point parallelism must not change the report"
    );
    assert_eq!(
        serial,
        run_stress(&heap, MASTER_SEED, 1),
        "old (heap) and new (calendar) queues must replay identically"
    );
    assert_eq!(
        serial,
        run_stress_on_seed_engine(&calendar, MASTER_SEED),
        "the pre-rework engine must replay identically"
    );
    assert_eq!(serial.digest, 0x95be_bfbf_c42f_73d8, "golden stress digest");
}

/// The fleet control plane's replay guarantee, pinned: a three-DC fleet with
/// one scheduled failure must produce the identical `FleetReport` on both
/// scheduler backends, and its digest is a golden value.  Like the stress
/// digest it folds only integer counters (placements, relocations, packet
/// outcomes, microsecond timestamps), so it is stable across platforms; a
/// change here means the control-plane or simulation semantics changed.
#[test]
fn fleet_failover_scenario_has_a_golden_digest() {
    let run = |queue: QueueKind| {
        let mut scenario = FleetScenario::new(512)
            .with_queue(queue)
            .with_fleet(uniform_fleet(3, 4))
            .with_internet(
                LinkSpec::symmetric(Dur::from_millis(75)).loss(LossSpec::Bernoulli(0.02)),
            )
            .with_failures(FailureSchedule::new().fail(DcId(2), Time::from_secs(3)));
        for service in [
            ServiceKind::Caching,
            ServiceKind::Coding,
            ServiceKind::Caching,
        ] {
            scenario = scenario.add_flow(
                service,
                Dur::from_millis(400),
                Box::new(CbrSource::new(Dur::from_millis(25), 400, 200)),
            );
        }
        scenario.run(Dur::from_secs(8))
    };
    let calendar = run(QueueKind::Calendar);
    let heap = run(QueueKind::Heap);
    assert_eq!(calendar.digest(), heap.digest());
    assert_eq!(calendar.relocated(), 1, "DC 2's flow must relocate");
    assert_eq!(
        calendar.digest(),
        0x570f_57d6_387b_ffb8,
        "golden fleet digest"
    );
}

/// `Scenario` runs — the full J-QoS pipeline, not just raw netsim — are also
/// byte-identical across the old and new scheduler backends.
#[test]
fn scenario_reports_are_identical_across_queue_backends() {
    let run = |queue: QueueKind| {
        Scenario::new(909)
            .with_queue(queue)
            .with_topology(Topology::wide_area(LossSpec::bursty(0.02, 3.0)))
            .with_coding(CodingParams::planetlab_defaults())
            .add_flow(
                ServiceKind::Coding,
                Box::new(CbrSource::new(Dur::from_millis(20), 512, 400)),
            )
            .add_flow(
                ServiceKind::Caching,
                Box::new(OnOffCbrSource::scaled(200, 1)),
            )
            .run(Dur::from_secs(10))
    };
    assert_eq!(run(QueueKind::Heap), run(QueueKind::Calendar));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Message conservation at stress scale, for arbitrary master seeds: a
    /// drained run delivers exactly what the links accepted, every loss is
    /// accounted, and the thread count never changes the outcome.
    #[test]
    fn stress_conserves_messages_for_any_seed(master_seed in 0u64..(1 << 48)) {
        let cfg = StressConfig::quick();
        let report = run_stress(&cfg, master_seed, 1);
        prop_assert_eq!(
            report.messages_sent, report.messages_delivered,
            "a drained queue conserves accepted messages"
        );
        prop_assert!(report.messages_dropped_loss > 0, "loss models must engage");
        prop_assert!(report.events_processed > 0);
        let parallel = run_stress(&cfg, master_seed, 3);
        prop_assert_eq!(report, parallel);
    }
}

/// Selective duplication sends far fewer bytes to the cloud while still
/// recovering the packets it covers (the §6.4/§6.5 strategy).
#[test]
fn selective_duplication_reduces_cloud_traffic() {
    let make = |policy: PathPolicy| {
        Scenario::new(55)
            .with_topology(Topology::wide_area(LossSpec::Bernoulli(0.01)))
            .add_flow(
                ServiceKind::Caching,
                Box::new(CbrSource::new(Dur::from_millis(10), 800, 1_000)),
            )
            .with_policy(policy)
            .run(Dur::from_secs(15))
    };
    let full = make(PathPolicy::for_service(ServiceKind::Caching));
    let selective = make(PathPolicy::selective(8));
    assert!(selective.flows[0].cloud_bytes * 6 < full.flows[0].cloud_bytes);
    assert!(full.flows[0].recovery_rate() > 0.9);
}
