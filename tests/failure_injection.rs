//! Failure-injection integration tests: the reliability services must behave
//! sensibly when the helpers themselves misbehave (lossy access links,
//! straggling cooperators, NACK loss, long outages).

use jqos::core::coding::params::CodingParams;
use jqos::core::nodes::dc2::Dc2Config;
use jqos::prelude::*;

/// Even when the receiver↔DC2 access path loses packets (NACKs, cooperative
/// responses and recovered packets can all be dropped), the system degrades
/// gracefully instead of deadlocking, and straggler protection (two coded
/// packets per batch) recovers more than a single coded packet does.
#[test]
fn lossy_access_paths_degrade_gracefully_and_straggler_protection_helps() {
    let run = |cross_parity: usize| {
        let topology = Topology::wide_area(LossSpec::bursty(0.02, 4.0))
            .receiver_access_loss(LossSpec::Bernoulli(0.02));
        let mut scenario = Scenario::new(200)
            .with_topology(topology)
            .with_coding(CodingParams {
                cross_parity,
                in_stream_enabled: false,
                ..CodingParams::planetlab_defaults()
            });
        for _ in 0..6 {
            scenario = scenario.add_flow(
                ServiceKind::Coding,
                Box::new(CbrSource::new(Dur::from_millis(20), 512, 1_000)),
            );
        }
        scenario.run(Dur::from_secs(25))
    };
    let one = run(1);
    let two = run(2);
    // Nothing hangs and a sensible fraction still gets through in both cases.
    assert!(one.overall_recovery_rate() > 0.3);
    assert!(
        two.overall_recovery_rate() > one.overall_recovery_rate() - 0.05,
        "two coded packets should not do worse: {:.2} vs {:.2}",
        two.overall_recovery_rate(),
        one.overall_recovery_rate()
    );
    // Some cooperative recoveries fail silently at the deadline, as §4.4 allows.
    assert!(one.dc2.coop_failed + one.dc2.waiting_expired > 0);
}

/// A multi-second outage on the direct path: the coding service keeps pulling
/// the stream through DC2, and residual loss stays far below the outage size.
#[test]
fn coding_service_survives_a_long_outage() {
    let outage = LossSpec::Compound(vec![
        LossSpec::Bernoulli(0.002),
        LossSpec::Outage(vec![(Time::from_secs(6), Time::from_secs(9))]),
    ]);
    // Only the measured flow's Internet path suffers the outage; the
    // companion flows ride their own (independently lossy) paths, which is
    // the diversity cross-stream coding depends on ("not all Internet paths
    // experience losses at the same time", §1).
    let mut scenario = Scenario::new(201)
        .with_topology(Topology::wide_area(LossSpec::Bernoulli(0.002)))
        .with_coding(CodingParams::planetlab_defaults())
        .add_flow_with_path(
            ServiceKind::Coding,
            Box::new(CbrSource::new(Dur::from_millis(25), 512, 700)),
            LinkSpec::symmetric(Dur::from_millis(75)).loss(outage),
        );
    for _ in 0..3 {
        scenario = scenario.add_flow(
            ServiceKind::Coding,
            Box::new(CbrSource::new(Dur::from_millis(25), 512, 700)),
        );
    }
    let report = scenario.run(Dur::from_secs(20));
    let flow = &report.flows[0];
    // The outage alone destroys ~120 packets on the direct path.
    assert!(
        flow.lost_on_direct() > 100,
        "outage should hit the direct path"
    );
    assert!(
        flow.residual_loss_rate() < 0.05,
        "most of the outage must be repaired, residual {:.3}",
        flow.residual_loss_rate()
    );
}

/// Disabling the spurious-NACK check must not break recovery (it only trades
/// some wasted recoveries for lower signalling latency).
#[test]
fn recovery_works_with_and_without_nack_checking() {
    let run = |check: bool| {
        Scenario::new(202)
            .with_topology(Topology::wide_area(LossSpec::Bernoulli(0.02)))
            .with_dc2(Dc2Config {
                check_before_recovery: check,
                ..Dc2Config::default()
            })
            .add_flow(
                ServiceKind::Caching,
                Box::new(CbrSource::new(Dur::from_millis(20), 400, 800)),
            )
            .run(Dur::from_secs(20))
    };
    let with_check = run(true);
    let without_check = run(false);
    assert!(with_check.flows[0].recovery_rate() > 0.85);
    assert!(without_check.flows[0].recovery_rate() > 0.85);
}

/// A DC2 goes dark mid-flow.  Parameterized over the whole fleet: whichever
/// of the three DCs crashes, the outcome must be the same shape — the dead
/// DC is evicted, its flows relocate to survivors and keep delivering, the
/// direct path never stops, and traffic aimed at the corpse is dropped by
/// the simulator with accounting, not blackholed.
#[test]
fn dc2_outage_mid_flow_degrades_gracefully() {
    let failure_at = Time::from_secs(3);
    for crashed in 0..3u32 {
        let crashed = DcId(crashed);
        let mut scenario = FleetScenario::new(204)
            .with_fleet(uniform_fleet(3, 4))
            .with_internet(
                LinkSpec::symmetric(Dur::from_millis(75)).loss(LossSpec::Bernoulli(0.02)),
            )
            .with_failures(FailureSchedule::new().fail(crashed, failure_at));
        for _ in 0..3 {
            scenario = scenario.add_flow(
                ServiceKind::Caching,
                Dur::from_millis(400),
                Box::new(CbrSource::new(Dur::from_millis(25), 400, 260)),
            );
        }
        let report = scenario.run(Dur::from_secs(8));

        // Exactly the crashed DC is evicted; the rest of the fleet is healthy.
        for &(dc, state, _) in &report.dc_states {
            if dc == crashed {
                assert_eq!(state, DcState::Evicted, "crashed {crashed:?} must evict");
            } else {
                assert_eq!(state, DcState::Registered, "survivor {dc:?} must stay");
            }
        }
        assert_eq!(report.fleet.evictions, 1);
        // Round-robin admission puts one flow on each DC, so exactly one flow
        // relocates — regardless of which DC died.
        assert_eq!(report.relocated(), 1, "one flow lived on {crashed:?}");
        assert_eq!(report.dropped(), 0);
        let evicted_at = report.dc_states[crashed.0 as usize]
            .2
            .expect("eviction is timestamped");
        for event in report.relocations_from(crashed) {
            let flow = &report.flows[event.flow.0 as usize];
            assert!(
                flow.delivered_after(evicted_at) > 0,
                "flow {} must keep delivering after {crashed:?} died",
                event.flow.0
            );
        }
        // The direct path is unaffected by the DC outage, for every flow.
        for flow in &report.flows {
            assert!(
                flow.delivered_direct() > flow.sent() * 9 / 10,
                "direct path should keep delivering, got {}/{}",
                flow.delivered_direct(),
                flow.sent()
            );
        }
        // Traffic aimed at the dead DC was dropped with accounting.
        assert!(report.messages_dropped_down > 0);
    }
}

/// Back-to-back loss episodes on the direct path must be classified in the
/// report's `EpisodeBreakdown`: repeated short outages show up as outage
/// packets, background random drops as random/multi-packet episodes.
#[test]
fn back_to_back_loss_episodes_are_reflected_in_the_breakdown() {
    let loss = LossSpec::Compound(vec![
        LossSpec::Bernoulli(0.01),
        LossSpec::PeriodicOutage {
            first: Time::from_secs(2),
            period: Dur::from_secs(4),
            duration: Dur::from_millis(1_500),
        },
    ]);
    let report = Scenario::new(205)
        .with_topology(Topology::wide_area(loss))
        .add_flow(
            ServiceKind::Caching,
            Box::new(CbrSource::new(Dur::from_millis(20), 400, 900)),
        )
        .run(Dur::from_secs(20));
    let flow = &report.flows[0];
    let breakdown = flow.episode_breakdown;
    // Four-plus outages of ~75 packets each dominate the loss volume.
    assert!(
        breakdown.has_outage(),
        "periodic outages must be classified as outage episodes: {breakdown:?}"
    );
    assert!(
        breakdown.episode_counts.2 >= 3,
        "back-to-back outage episodes must each be counted: {breakdown:?}"
    );
    assert!(
        breakdown.outage_packets > breakdown.random_packets,
        "outage packets should dominate random drops: {breakdown:?}"
    );
    // The per-class contributions are consistent with the totals.
    let (r, m, o) = breakdown.contribution();
    assert!((r + m + o - 1.0).abs() < 1e-9);
    assert_eq!(breakdown.total_lost(), flow.lost_on_direct());
}

/// The §3.5 upgrade path: a flow whose observed latency misses its budget is
/// moved up the cost spectrum one service at a time — Coding → Caching →
/// Forwarding — and never past Forwarding.
#[test]
fn budget_misses_upgrade_coding_to_caching_to_forwarding() {
    // 75 ms direct path, 10 ms access: coding estimates 115 ms, caching
    // 95 ms, forwarding 90 ms (the §6.1 numbers).
    let delays = PathDelays::symmetric(
        Dur::from_millis(75),
        Dur::from_millis(10),
        Dur::from_millis(70),
        Dur::from_millis(10),
    );
    let selector = ServiceSelector::new(delays);
    let reg = |budget_ms: u64| Registration {
        latency_budget: Dur::from_millis(budget_ms),
        loss_tolerant: false,
    };

    // Budget 100 ms: coding (115 ms estimate) is selected-out, and a flow
    // observing a p95 above budget steps up to caching.
    let up = selector
        .maybe_upgrade(ServiceKind::Coding, Dur::from_millis(140), reg(100))
        .expect("coding must upgrade when it misses the budget");
    assert_eq!(up.service, ServiceKind::Caching);
    assert!(up.estimated_latency <= Dur::from_millis(100));

    // Caching in turn misses a 92 ms budget: the only step left is
    // forwarding.
    let up = selector
        .maybe_upgrade(ServiceKind::Caching, Dur::from_millis(120), reg(92))
        .expect("caching must upgrade when it misses the budget");
    assert_eq!(up.service, ServiceKind::Forwarding);

    // Even when nothing fits the budget, the chain still ends at forwarding
    // (the best J-QoS can do) ...
    let up = selector
        .maybe_upgrade(ServiceKind::Coding, Dur::from_millis(500), reg(10))
        .expect("must escalate towards forwarding");
    assert_eq!(up.service, ServiceKind::Forwarding);
    // ... and forwarding itself has nowhere to go.
    assert!(selector
        .maybe_upgrade(ServiceKind::Forwarding, Dur::from_millis(500), reg(10))
        .is_none());

    // A flow meeting its budget is never touched.
    assert!(selector
        .maybe_upgrade(ServiceKind::Coding, Dur::from_millis(115), reg(150))
        .is_none());
}

/// An Internet-only flow over a clean path must not involve the cloud at all:
/// judicious use means zero cloud cost when best effort is good enough.
#[test]
fn clean_paths_use_no_cloud_resources() {
    let report = Scenario::new(203)
        .with_topology(Topology::lossless(
            Dur::from_millis(40),
            Dur::from_millis(5),
            Dur::from_millis(38),
            Dur::from_millis(5),
        ))
        .add_flow(
            ServiceKind::InternetOnly,
            Box::new(CbrSource::new(Dur::from_millis(10), 512, 500)),
        )
        .run(Dur::from_secs(10));
    let flow = &report.flows[0];
    assert_eq!(flow.unrecovered(), 0);
    assert_eq!(flow.cloud_copies, 0);
    assert_eq!(report.dc1.packets_in, 0);
    assert_eq!(report.dc2.nacks, 0);
    assert_eq!(report.encoder.coded_packets, 0);
}
