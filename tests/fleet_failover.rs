//! Fleet fault-injection integration tests: DC crashes mid-flow, heartbeat
//! flaps, and multi-DC failures must degrade gracefully — relocation instead
//! of silent loss, Suspect instead of trigger-happy eviction, accounted drops
//! instead of panics.

use jqos::prelude::*;

fn cbr(count: u64) -> Box<dyn TrafficSource> {
    Box::new(CbrSource::new(Dur::from_millis(25), 400, count))
}

/// A DC crash mid-flow: the coding flows living on the crashed DC are
/// relocated to survivors, keep delivering after the failover, and the
/// recovery machinery (batches, NACKs, pulls) resumes against the adopting
/// DC — recoverable packets are not lost with the old DC.
#[test]
fn dc_crash_relocates_active_coding_flows_without_losing_recoverable_packets() {
    let failure_at = Time::from_secs(3);
    let mut scenario = FleetScenario::new(301)
        .with_fleet(uniform_fleet(3, 4))
        .with_internet(LinkSpec::symmetric(Dur::from_millis(75)).loss(LossSpec::Bernoulli(0.02)))
        .with_failures(FailureSchedule::new().fail(DcId(1), failure_at));
    // Six coding flows, round-robin over three DCs: two live on the doomed
    // DC 1 and stay mid-batch when it crashes.
    for _ in 0..6 {
        scenario = scenario.add_flow(ServiceKind::Coding, Dur::from_millis(400), cbr(280));
    }
    let report = scenario.run(Dur::from_secs(8));

    // Both of DC 1's flows relocated; nothing was dropped.
    assert_eq!(report.fleet.flows_placed, 6);
    assert_eq!(report.fleet.evictions, 1);
    assert_eq!(report.relocated(), 2);
    assert_eq!(report.dropped(), 0);
    let (_, state, evicted_at) = report.dc_states[1];
    assert_eq!(state, DcState::Evicted);
    let evicted_at = evicted_at.expect("crash must timestamp the eviction");
    assert!(evicted_at > failure_at);

    for event in report.relocations_from(DcId(1)) {
        let flow = &report.flows[event.flow.0 as usize];
        // The flow kept delivering after its DC died...
        assert!(
            flow.delivered_after(evicted_at) > 0,
            "flow {} must keep delivering after failover",
            event.flow.0
        );
        // ...and the delivery rate stays near the healthy flows': the crash
        // must not orphan a batch's worth of recoverable packets.
        let rate = flow.delivered() as f64 / flow.sent() as f64;
        assert!(
            rate > 0.97,
            "flow {} delivered only {:.3} after relocation",
            event.flow.0,
            rate
        );
    }
    // Recovery happened on both sides of the failover.
    let recovered_total: usize = report.flows.iter().map(|f| f.recovered()).sum();
    assert!(recovered_total > 0, "coding recovery must stay active");
    // Traffic aimed at the dead DC was dropped by the simulator (and
    // accounted), not silently blackholed.
    assert!(report.messages_dropped_down > 0);
}

/// A heartbeat flap — one missed deadline, then a refresh just in time —
/// walks the DC to Suspect and straight back to Registered.  Its flows never
/// move and no eviction happens.
#[test]
fn heartbeat_flap_suspects_but_does_not_evict() {
    let hb = HeartbeatConfig::default();
    let mut registry = FleetRegistry::new(hb, PlacementStrategy::RoundRobin);
    let dc = registry.register_dc(
        DcCapabilities {
            region: 0,
            capacity: 4,
            access_latency: Dur::from_millis(10),
            inter_dc_latency: Dur::from_millis(70),
        },
        Time::ZERO,
    );
    let mut rng = jqos::core::fleet::fleet_rng(7);
    let requirements = FlowRequirements {
        service: ServiceKind::Caching,
        latency_budget: Dur::from_millis(400),
        direct_latency: Dur::from_millis(75),
        sender_access: Dur::from_millis(10),
    };
    registry
        .place_flow(FlowId(0), requirements, &mut rng)
        .expect("one DC with free capacity");

    let step = hb.deadline_step();
    // Healthy refresh before the first deadline.
    registry.heartbeat(dc, Time::ZERO + hb.interval);
    assert!(registry.tick(Time::ZERO + step).is_empty());

    // Then the DC goes silent past its next deadline: Suspect, not Evicted.
    let lapsed = Time::ZERO + hb.interval + step + Dur::from_millis(1);
    assert!(registry.tick(lapsed).is_empty());
    assert_eq!(registry.state(dc), DcState::Suspect);

    // A just-in-time refresh lands before the second deadline: the flap
    // recovers, the flow never moved.
    registry.heartbeat(dc, lapsed + Dur::from_millis(5));
    assert_eq!(registry.state(dc), DcState::Registered);
    assert!(registry.tick(lapsed + step).is_empty());
    assert_eq!(registry.assignment(FlowId(0)), Some(dc));
    let stats = registry.stats();
    assert_eq!(stats.suspects, 1);
    assert_eq!(stats.flap_recoveries, 1);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.flows_relocated, 0);
}

/// Two simultaneous DC failures with the survivor already at capacity: the
/// orphaned flows drop with an accounted reason code — no panic, no silent
/// loss — and the survivor's own flows are untouched.
#[test]
fn two_simultaneous_dc_failures_degrade_gracefully() {
    let failure_at = Time::from_secs(3);
    // Capacity 2 per DC: six flows fill the fleet completely, so the single
    // survivor has no free slots for the four orphans.
    let mut scenario = FleetScenario::new(302)
        .with_fleet(uniform_fleet(3, 2))
        .with_internet(LinkSpec::symmetric(Dur::from_millis(75)).loss(LossSpec::Bernoulli(0.01)))
        .with_failures(
            FailureSchedule::new()
                .fail(DcId(0), failure_at)
                .fail(DcId(2), failure_at),
        );
    for _ in 0..6 {
        scenario = scenario.add_flow(ServiceKind::Caching, Dur::from_millis(400), cbr(240));
    }
    let report = scenario.run(Dur::from_secs(8));

    assert_eq!(report.fleet.flows_placed, 6);
    assert_eq!(report.fleet.evictions, 2);
    assert_eq!(report.dc_states[0].1, DcState::Evicted);
    assert_eq!(report.dc_states[1].1, DcState::Registered);
    assert_eq!(report.dc_states[2].1, DcState::Evicted);
    // All four orphans dropped, every one with the no-capacity reason code.
    assert_eq!(report.relocated(), 0);
    assert_eq!(report.dropped(), 4);
    assert_eq!(report.dropped_with(DropReason::NoCapacity), 4);
    assert_eq!(report.dropped_with(DropReason::FleetEmpty), 0);
    assert_eq!(report.fleet.drops_no_capacity, 4);
    // The survivor kept its own two flows and they kept recovering.
    let survivors: Vec<_> = report
        .flows
        .iter()
        .filter(|f| f.initial_dc == Some(DcId(1)))
        .collect();
    assert_eq!(survivors.len(), 2);
    for flow in survivors {
        assert!(
            flow.delivered() as f64 / flow.sent() as f64 > 0.97,
            "survivor flows must be unaffected"
        );
    }
    // Dropped flows still deliver whatever the direct Internet path carries.
    for flow in report
        .flows
        .iter()
        .filter(|f| f.initial_dc != Some(DcId(1)))
    {
        assert!(flow.delivered_direct() > 0);
    }
}
