//! Workspace wiring smoke tests: the umbrella `jqos` crate must expose every
//! member crate, and the canonical `Scenario` doc example from
//! `jqos_core::lib` must run through the re-exported prelude.  Doctests only
//! run when rustdoc does; this makes the same contract a first-class
//! `#[test]` that every `cargo test` exercises.

use jqos::prelude::*;

/// The `Scenario` example from `crates/jqos-core/src/lib.rs`, driven through
/// `jqos::prelude` instead of `jqos_core::prelude`.
#[test]
fn prelude_runs_the_scenario_doc_example() {
    let report = Scenario::new(7)
        .with_topology(Topology::wide_area(LossSpec::Bernoulli(0.01)))
        .add_flow(
            ServiceKind::Caching,
            Box::new(CbrSource::new(Dur::from_millis(20), 400, 200)),
        )
        .run(Dur::from_secs(5));
    assert!(report.flows[0].recovery_rate() > 0.5);
}

/// Every member crate is reachable through the umbrella re-exports.
#[test]
fn umbrella_reexports_every_member_crate() {
    // jqos::core (jqos-core)
    let params = jqos::core::coding::params::CodingParams::planetlab_defaults();
    assert!(params.validate().is_ok());

    // jqos::erasure
    let rs = jqos::erasure::rs::ReedSolomon::new(5, 1).expect("valid code");
    let data: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; 64]).collect();
    assert_eq!(rs.encode(&data).expect("encode").len(), 1);

    // jqos::netsim
    let dur = jqos::netsim::Dur::from_millis(30);
    assert_eq!(dur.as_micros(), 30_000);

    // jqos::measurements
    let paths = jqos::measurements::planetlab::planetlab_paths(11);
    assert!(!paths.is_empty());

    // jqos::qoe
    let model = jqos::qoe::PsnrModel::default();
    assert!(model.good_mean > model.frozen_mean);

    // jqos::transport + jqos::workloads compile-time reachability.
    let _harness_ty = std::any::type_name::<jqos::transport::minitcp::TcpMsg>();
    let _video_ty = std::any::type_name::<jqos::workloads::video::VideoConfig>();

    // jqos::net (jqos-net): the wire format round-trips.
    let msg = jqos::net::wire::WireMsg::Nack { flow: 3, seq: 9 };
    assert_eq!(jqos::net::wire::WireMsg::decode(&msg.encode()), Some(msg));
}
