//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], an immutable, cheaply-cloneable byte buffer backed by
//! an `Arc<[u8]>`, with the subset of the upstream API this workspace uses:
//! `from(Vec<u8>)`, `from_static`, `from_owner`, `len`, `is_empty`, `as_ref`,
//! `slice`, `Deref` to `[u8]`, equality and hashing.
//!
//! Unlike a plain `Arc<Vec<u8>>`, a [`Bytes`] can be a *view* into a larger
//! shared allocation: [`Bytes::slice`] and [`Bytes::from_owner`] adjust an
//! offset/length window without copying, so many views (e.g. the parity
//! shards of one erasure-coded batch) can share a single slab allocation.

use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer; clones share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    /// A window `[off, off + len)` into a shared allocation.
    Shared {
        buf: Arc<[u8]>,
        off: usize,
        len: usize,
    },
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            inner: Inner::Static(&[]),
        }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            inner: Inner::Static(bytes),
        }
    }

    /// Wraps an existing shared allocation without copying; the returned
    /// buffer covers the whole slab.  Combine with [`Bytes::slice`] for
    /// zero-copy windows into a sub-range.
    pub fn from_owner(buf: Arc<[u8]>) -> Self {
        let len = buf.len();
        Bytes {
            inner: Inner::Shared { buf, off: 0, len },
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a sub-buffer covering `range`.  Shared buffers are re-windowed
    /// without copying; only static slices stay static.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice range {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        match &self.inner {
            Inner::Static(s) => Bytes {
                inner: Inner::Static(&s[range]),
            },
            Inner::Shared { buf, off, .. } => Bytes {
                inner: Inner::Shared {
                    buf: Arc::clone(buf),
                    off: off + range.start,
                    len: range.end - range.start,
                },
            },
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared { buf, off, len } => &buf[*off..*off + *len],
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_owner(v.into())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(32) {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        if self.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_and_compare_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
    }

    #[test]
    fn static_and_heap_buffers_compare_by_content() {
        let s = Bytes::from_static(b"abc");
        let h = Bytes::from(b"abc".to_vec());
        assert_eq!(s, h);
        assert!(!s.is_empty());
        assert_eq!(s.slice(1..3), Bytes::from_static(b"bc"));
    }

    #[test]
    fn slices_of_shared_buffers_are_zero_copy_windows() {
        let slab: Arc<[u8]> = vec![0, 1, 2, 3, 4, 5, 6, 7].into();
        let whole = Bytes::from_owner(Arc::clone(&slab));
        let view = whole.slice(2..6);
        assert_eq!(&view[..], &[2, 3, 4, 5]);
        // The view holds a reference to the same slab, not a copy.
        assert_eq!(Arc::strong_count(&slab), 3);
        let nested = view.slice(1..3);
        assert_eq!(&nested[..], &[3, 4]);
        drop((whole, view, nested));
        assert_eq!(Arc::strong_count(&slab), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }
}
