//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — without the statistics machinery.  Each
//! benchmark runs a small fixed number of timed iterations and reports the
//! mean wall time (plus derived throughput when configured).  That keeps
//! `cargo bench` runnable and the bench sources compiling, which is all an
//! offline environment can honestly promise.

use std::time::Instant;

/// Re-export of the standard optimisation barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting throughput alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    iterations: u64,
    total_nanos: u128,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // One timed iteration keeps `cargo bench` fast even for the heavy
        // encoder benches; override with CRITERION_STUB_ITERS.
        let iterations = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Criterion { iterations }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(self.iterations, &id.into(), None, f);
    }
}

/// A group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the stand-in's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the stand-in does not time-box groups.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(self.criterion.iterations, &id.into(), self.throughput, f);
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            self.criterion.iterations,
            &id.into(),
            self.throughput,
            |b| f(b, input),
        );
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    iterations: u64,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iterations,
        total_nanos: 0,
    };
    f(&mut bencher);
    let mean_nanos = bencher.total_nanos as f64 / iterations.max(1) as f64;
    let mut line = format!("  {:<32} {:>12.1} ns/iter", id.id, mean_nanos);
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / (mean_nanos / 1e9);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>10.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>10.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

/// Declares a benchmark group function that runs each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags passed by `cargo bench`/`cargo test`
            // (e.g. --bench, --test); the stand-in always runs everything.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_accept_throughput_and_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
