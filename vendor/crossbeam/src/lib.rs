//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided, implemented on top of
//! `std::thread::scope` (which has covered crossbeam's scoped-thread use case
//! since Rust 1.63).  The API mirrors crossbeam's shape: `scope` returns a
//! `Result`, and `Scope::spawn` closures receive a scope argument (always
//! ignored by callers in this workspace, so it is passed as `()`).

pub mod thread {
    //! Scoped threads.

    /// The result of a [`scope`] call: `Err` carries a child-thread panic
    /// payload (never produced by this delegation to std, which re-raises
    /// panics instead).
    pub type Result<T> = std::thread::Result<T>;

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// A scope in which threads borrowing local data may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread.  The closure receives the scope argument
        /// crossbeam passes (here reduced to `()` — callers use `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Creates a scope for spawning threads that may borrow from the
    /// enclosing stack frame; all threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 100);
        }
    }
}
