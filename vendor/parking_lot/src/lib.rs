//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronisation primitives behind parking_lot's ergonomics:
//! `lock()` / `read()` / `write()` return guards directly (poisoning is
//! swallowed, as parking_lot has no poisoning).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock whose accessors never return a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
    }
}
