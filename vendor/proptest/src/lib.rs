//! Offline stand-in for the `proptest` crate.
//!
//! Real proptest shrinks failing inputs and persists regressions; this
//! stand-in keeps the part that matters for an offline CI gate — running
//! each property over many seeded random inputs — behind the same surface
//! syntax: the [`proptest!`] macro with `x in strategy` and `x: Type`
//! parameter forms, [`ProptestConfig::with_cases`], `prop_assert*!`,
//! `proptest::collection::vec`, [`Just`], [`Strategy::prop_map`] and the
//! weighted [`prop_oneof!`] union.  Inputs are drawn from a fixed-seed
//! generator, so failures reproduce deterministically (rerun the test to
//! replay them; there is no shrinking).

use rand::rngs::SmallRng;

#[doc(hidden)]
pub use rand as __rand;

/// Runtime configuration for one `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// One boxed generator arm of a [`OneOf`] union.
pub type OneOfArm<V> = Box<dyn Fn(&mut SmallRng) -> V>;

/// Weighted union of same-valued strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, OneOfArm<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// A union of `(weight, generator)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, OneOfArm<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let mut pick = rand::Rng::gen_range(rng, 0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The canonical strategy for a type: uniform over its whole domain.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! impl_any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rand::Rng::gen::<u64>(rng) as $t
            }
        }
    )*};
}

impl_any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rand::Rng::gen::<bool>(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub mod collection {
    //! Strategies for collections.

    use super::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (plain `assert!` here: the
/// stand-in has no shrinking machinery that would need early bail-out).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted union of strategies producing the same value type:
/// `prop_oneof![3 => a, 2 => b]` picks `a` with probability 3/5.  Arms
/// without weights (`prop_oneof![a, b]`) are equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$({
            let strat = $strat;
            (
                $weight as u32,
                Box::new(move |rng: &mut $crate::__rand::rngs::SmallRng| {
                    $crate::Strategy::generate(&strat, rng)
                }) as Box<dyn Fn(&mut $crate::__rand::rngs::SmallRng) -> _>,
            )
        }),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Declares property tests: each `fn` runs `config.cases` times over
/// seeded random inputs drawn from its parameter strategies.
#[macro_export]
macro_rules! proptest {
    // Entry: explicit config, then one or more test functions.
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::proptest!(@items ($cfg); $($items)*);
    };
    // Entry: default config.
    ($(#[$attr:meta])* fn $($items:tt)*) => {
        $crate::proptest!(@items ($crate::ProptestConfig::default()); $(#[$attr])* fn $($items)*);
    };

    (@items ($cfg:expr);) => {};
    (@items ($cfg:expr); $(#[$attr:meta])* fn $name:ident ($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Fixed seed: failures replay on rerun.  Derived from the case
            // count so differently-sized blocks decorrelate.
            let mut rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                0x4A51_6F53_u64 ^ ((config.cases as u64) << 32),
            );
            for _ in 0..config.cases {
                $crate::proptest!(@run rng; ($($params)*); $body);
            }
        }
        $crate::proptest!(@items ($cfg); $($rest)*);
    };

    // Bind every parameter from its strategy, then run the body.
    (@run $rng:ident; (); $body:block) => { $body };
    (@run $rng:ident; ($n:ident in $strat:expr); $body:block) => {
        { let $n = $crate::Strategy::generate(&($strat), &mut $rng); $body }
    };
    (@run $rng:ident; ($n:ident in $strat:expr, $($rest:tt)*); $body:block) => {
        { let $n = $crate::Strategy::generate(&($strat), &mut $rng); $crate::proptest!(@run $rng; ($($rest)*); $body); }
    };
    (@run $rng:ident; ($n:ident : $ty:ty); $body:block) => {
        { let $n = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng); $body }
    };
    (@run $rng:ident; ($n:ident : $ty:ty, $($rest:tt)*); $body:block) => {
        { let $n = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng); $crate::proptest!(@run $rng; ($($rest)*); $body); }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_ascriptions_bind(x in 1usize..10, y: u8, flags in crate::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(flags.len() < 5);
            let _ = y;
        }

        #[test]
        fn tuples_compose(pair in (0u32..4, 10u64..20)) {
            prop_assert!(pair.0 < 4);
            prop_assert!((10..20).contains(&pair.1));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert_ne!(x, 100);
        }
    }
}
