//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate provides the exact subset of the `rand` 0.8 API that the J-QoS
//! sources use: [`rngs::SmallRng`] (a xoshiro256++ generator, the same
//! algorithm real `rand` uses for `SmallRng` on 64-bit targets),
//! [`SeedableRng::seed_from_u64`] (SplitMix64 seeding, matching upstream),
//! and the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//!
//! Determinism matters more than bit-compatibility with upstream `rand`:
//! every simulator component derives its own seeded `SmallRng`, and the
//! statistical tests in `netsim::rng` only require a good-quality uniform
//! source.

pub mod rngs;

/// A random number generator: the core sampling primitive.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-width byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed, expanded with SplitMix64 so
    /// that similar seeds produce uncorrelated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step (Vigna), as used by upstream rand_core.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Draws a uniform value in `[0, span)` without modulo bias (rejection
/// sampling on the top-level 128-bit multiply).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Lemire's multiply-shift method over 64-bit draws; span here always
    // fits in u64 + 1 for the integer ranges above.
    let span64 = span as u64;
    if span64 as u128 == span {
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    }
    // span == 2^64 exactly (0..=u64::MAX): any draw is uniform.
    rng.next_u64() as u128
}

/// Extension methods for random sampling, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(1234);
        let mut b = SmallRng::seed_from_u64(1234);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(3usize..7);
            assert!((3..7).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }
}
