//! Named generator implementations.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG: xoshiro256++ (Blackman & Vigna),
/// the same algorithm upstream `rand` uses for `SmallRng` on 64-bit targets.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_state(s: [u64; 4]) -> Self {
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            SmallRng {
                s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
            }
        } else {
            SmallRng { s }
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        SmallRng::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = SmallRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
