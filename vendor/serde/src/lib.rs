//! Offline stand-in for the `serde` crate.
//!
//! Real serde separates data model from format via the `Serializer` trait;
//! this workspace only ever serialises figure data to JSON, so the stand-in
//! collapses the pipeline: [`Serialize`] renders straight into a [`Value`]
//! tree that `serde_json` then pretty-prints.  `#[derive(Serialize)]` is
//! provided by the sibling `serde_derive` proc-macro crate.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::Serialize;

/// A JSON-shaped value tree: the single data model of this stand-in.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON-shaped value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::Number(3.0));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_render_recursively() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        match v.to_value() {
            Value::Array(items) => assert_eq!(items.len(), 2),
            other => panic!("expected array, got {other:?}"),
        }
    }
}
