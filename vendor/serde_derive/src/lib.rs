//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for the one shape this workspace uses —
//! structs with named fields — without depending on `syn`/`quote` (which are
//! unavailable offline).  The macro walks the raw token stream: it skips
//! attributes and visibility, records the struct name, then collects field
//! names (the identifier preceding each `:` at angle-bracket depth zero
//! inside the body braces).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by rendering each named field into an entry of
/// a `serde::Value::Object`, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]` / doc comments) and visibility.
    let mut name = None;
    let mut body = None;
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Ident(id) if *id.to_string() == *"struct" => {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => return Err(format!("expected struct name, got {other:?}")),
                }
                // The next brace group is the field list (no generics are
                // used on serialised structs in this workspace).
                for rest in tokens.by_ref() {
                    if let TokenTree::Group(g) = &rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                    if let TokenTree::Punct(p) = &rest {
                        if p.as_char() == ';' {
                            return Err(
                                "derive(Serialize) stub supports only named-field structs".into()
                            );
                        }
                    }
                }
                break;
            }
            TokenTree::Ident(id) if *id.to_string() == *"enum" => {
                return Err("derive(Serialize) stub supports only named-field structs".into());
            }
            _ => {}
        }
    }

    let name = name.ok_or("no struct found in derive input")?;
    let body = body.ok_or("struct has no brace-delimited field list")?;
    let fields = field_names(body)?;

    let entries: String = fields
        .iter()
        .map(|f| format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f})),"))
        .collect();

    let out = format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .map_err(|e| format!("generated impl failed to parse: {e:?}"))
}

/// Extracts field names from a named-field struct body: for each
/// comma-separated chunk (at angle-bracket depth 0), the identifier
/// immediately before the first `:`.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    let mut last_ident: Option<String> = None;
    let mut field_done = false;

    for tt in body {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ':' if angle_depth == 0 && !field_done => {
                    if let Some(name) = last_ident.take() {
                        fields.push(name);
                        field_done = true;
                    }
                }
                ',' if angle_depth == 0 => {
                    field_done = false;
                    last_ident = None;
                }
                _ => {}
            },
            TokenTree::Ident(id) if !field_done => {
                let s = id.to_string();
                // `pub` (and `r#` raw prefixes do not occur here) is
                // visibility, not a field name.
                if s != "pub" {
                    last_ident = Some(s);
                }
            }
            _ => {}
        }
    }

    if fields.is_empty() {
        return Err("struct has no named fields to serialise".into());
    }
    Ok(fields)
}
