//! Offline stand-in for the `serde_json` crate.
//!
//! Pretty-prints the [`serde::Value`] tree produced by the serde stand-in,
//! and provides the [`json!`] macro for inline object literals.  Output is
//! valid JSON: strings are escaped, non-finite floats render as `null`
//! (matching serde_json's lossy behaviour for `f64`), and integral numbers
//! print without a trailing `.0`.

use serde::Serialize;
pub use serde::Value;

/// Errors from serialisation.  The stand-in's rendering is infallible, so
/// this type exists only to keep `Result`-shaped call sites compiling.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialises `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            depth,
            ('[', ']'),
            |out, item, indent, depth| {
                write_value(out, item, indent, depth);
            },
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (k, v), indent, depth| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let len = items.len();
    if len == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from an inline literal.  Supports the subset this
/// workspace uses: object literals with string-literal keys, plus bare
/// serialisable expressions.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (String::from($key), $crate::to_value(&$value)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    (null) => { $crate::Value::Null };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_output_is_indented_and_escaped() {
        let v = json!({
            "name": "line\nbreak",
            "count": 3u32,
            "ratio": 0.5f64,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"line\\nbreak\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.starts_with("{\n"));
    }

    #[test]
    fn compact_output_round_trips_basic_shapes() {
        let s = to_string(&vec![1u32, 2, 3]).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
