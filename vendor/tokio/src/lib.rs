//! Offline stand-in for the `tokio` crate.
//!
//! The jqos-net prototype and the `live_relay` example only need a small
//! slice of tokio: `spawn`, `JoinHandle`, `time::{sleep, timeout}`,
//! `net::UdpSocket` and the `#[tokio::main]` / `#[tokio::test]` macros.
//! This stand-in provides that slice on a deliberately simple execution
//! model:
//!
//! * [`runtime::block_on`] drives one future on the current thread with a
//!   park/unpark waker;
//! * [`spawn`] runs each task on its own OS thread under its own
//!   `block_on` (thread-per-task — no work stealing, no reactor);
//! * [`net::UdpSocket`] wraps a std UDP socket with a short read timeout,
//!   so pending reads re-poll every few milliseconds instead of registering
//!   with an event loop.
//!
//! This trades throughput for zero dependencies, which is the right trade
//! for loopback demos and integration tests in an offline build
//! environment.

pub mod net;
pub mod runtime;
pub mod task;
pub mod time;

pub use task::{spawn, JoinError, JoinHandle};
pub use tokio_macros::{main, test};
