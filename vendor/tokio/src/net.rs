//! Async UDP on top of std sockets.

use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::time::POLL_SLICE;

/// A UDP socket usable from async code.
///
/// Reads use a short OS-level read timeout: a pending `recv_from` blocks its
/// task thread for one slice, then re-polls.  Sends go straight through (UDP
/// sends do not meaningfully block).
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Binds a socket to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    pub async fn bind(addr: &str) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_read_timeout(Some(POLL_SLICE))?;
        Ok(UdpSocket { inner })
    }

    /// The local address the socket is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Receives one datagram, waiting until one arrives.
    pub fn recv_from<'a>(&'a self, buf: &'a mut [u8]) -> RecvFrom<'a> {
        RecvFrom {
            socket: &self.inner,
            buf,
        }
    }

    /// Sends one datagram to `target`.
    pub async fn send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        self.inner.send_to(buf, target)
    }
}

/// Future returned by [`UdpSocket::recv_from`].
pub struct RecvFrom<'a> {
    socket: &'a std::net::UdpSocket,
    buf: &'a mut [u8],
}

impl Future for RecvFrom<'_> {
    type Output = io::Result<(usize, SocketAddr)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        match me.socket.recv_from(me.buf) {
            Ok(ok) => Poll::Ready(Ok(ok)),
            // The read timeout surfaces as WouldBlock or TimedOut depending
            // on the platform; both just mean "nothing yet".
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;
    use std::time::Duration;

    #[test]
    fn loopback_datagram_round_trip() {
        block_on(async {
            let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b_addr = b.local_addr().unwrap();
            a.send_to(b"ping", b_addr).await.unwrap();
            let mut buf = [0u8; 16];
            let (len, from) = b.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..len], b"ping");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }

    #[test]
    fn recv_timeout_via_time_timeout() {
        block_on(async {
            let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let mut buf = [0u8; 16];
            let r = crate::time::timeout(Duration::from_millis(30), sock.recv_from(&mut buf)).await;
            assert!(r.is_err(), "no sender, so the timeout must fire");
        });
    }
}
