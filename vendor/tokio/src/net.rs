//! Async UDP on top of std sockets.

use std::future::Future;
use std::io;
use std::net::SocketAddr;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::time::POLL_SLICE;

/// A UDP socket usable from async code.
///
/// The inner std socket runs in non-blocking mode.  A pending `recv_from`
/// parks its task thread for one poll slice, then re-polls; this keeps the
/// stand-in reactor-free while still letting callers drain bursts without
/// syscalls blocking in between.  The non-async [`UdpSocket::try_recv_from`]
/// and [`UdpSocket::try_send_to`] expose the non-blocking socket directly so
/// hot loops (the `jqos-net` relay shards) can batch many datagrams per
/// wakeup and observe egress back-pressure explicitly.
pub struct UdpSocket {
    inner: std::net::UdpSocket,
}

impl UdpSocket {
    /// Binds a socket to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port).
    pub async fn bind(addr: &str) -> io::Result<UdpSocket> {
        let inner = std::net::UdpSocket::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(UdpSocket { inner })
    }

    /// The local address the socket is bound to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Receives one datagram, waiting until one arrives.
    pub fn recv_from<'a>(&'a self, buf: &'a mut [u8]) -> RecvFrom<'a> {
        RecvFrom {
            socket: &self.inner,
            buf,
        }
    }

    /// Non-blocking receive: returns `Ok(None)` when no datagram is queued.
    ///
    /// This is the batching primitive: after an awaited [`recv_from`]
    /// delivers the first datagram of a wakeup, callers drain the rest of
    /// the burst with `try_recv_from` until it reports an empty queue.
    ///
    /// [`recv_from`]: UdpSocket::recv_from
    pub fn try_recv_from(&self, buf: &mut [u8]) -> io::Result<Option<(usize, SocketAddr)>> {
        match self.inner.recv_from(buf) {
            Ok(ok) => Ok(Some(ok)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Sends one datagram to `target`, retrying while the send buffer is
    /// full (which effectively never happens for loopback UDP).
    pub async fn send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<usize> {
        loop {
            match self.try_send_to(buf, target) {
                Ok(Some(n)) => return Ok(n),
                Ok(None) => crate::time::sleep(POLL_SLICE).await,
                Err(e) => return Err(e),
            }
        }
    }

    /// Non-blocking send: returns `Ok(None)` when the socket buffer is full
    /// (the datagram is *not* sent — callers count this as back-pressure
    /// shedding rather than silently dropping).
    pub fn try_send_to(&self, buf: &[u8], target: SocketAddr) -> io::Result<Option<usize>> {
        match self.inner.send_to(buf, target) {
            Ok(n) => Ok(Some(n)),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Future returned by [`UdpSocket::recv_from`].
pub struct RecvFrom<'a> {
    socket: &'a std::net::UdpSocket,
    buf: &'a mut [u8],
}

impl Future for RecvFrom<'_> {
    type Output = io::Result<(usize, SocketAddr)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let me = self.get_mut();
        match me.socket.recv_from(me.buf) {
            Ok(ok) => Poll::Ready(Ok(ok)),
            // Nothing queued yet: park this task thread for one slice, then
            // re-poll (the stand-in has no reactor to register interest
            // with; see the crate docs).
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(POLL_SLICE);
                cx.waker().wake_by_ref();
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;
    use std::time::Duration;

    #[test]
    fn loopback_datagram_round_trip() {
        block_on(async {
            let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b_addr = b.local_addr().unwrap();
            a.send_to(b"ping", b_addr).await.unwrap();
            let mut buf = [0u8; 16];
            let (len, from) = b.recv_from(&mut buf).await.unwrap();
            assert_eq!(&buf[..len], b"ping");
            assert_eq!(from, a.local_addr().unwrap());
        });
    }

    #[test]
    fn recv_timeout_via_time_timeout() {
        block_on(async {
            let sock = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let mut buf = [0u8; 16];
            let r = crate::time::timeout(Duration::from_millis(30), sock.recv_from(&mut buf)).await;
            assert!(r.is_err(), "no sender, so the timeout must fire");
        });
    }

    #[test]
    fn try_recv_drains_a_burst_without_blocking() {
        block_on(async {
            let a = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b = UdpSocket::bind("127.0.0.1:0").await.unwrap();
            let b_addr = b.local_addr().unwrap();
            for i in 0..5u8 {
                a.send_to(&[i], b_addr).await.unwrap();
            }
            // First datagram via the awaited path, the rest via try_recv.
            let mut buf = [0u8; 16];
            let (len, _) = b.recv_from(&mut buf).await.unwrap();
            assert_eq!((len, buf[0]), (1, 0));
            let mut drained = Vec::new();
            while let Some((len, _)) = b.try_recv_from(&mut buf).unwrap() {
                assert_eq!(len, 1);
                drained.push(buf[0]);
            }
            assert_eq!(drained, vec![1, 2, 3, 4]);
            assert!(b.try_recv_from(&mut buf).unwrap().is_none());
        });
    }
}
