//! A minimal current-thread executor.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Wakes the executor thread via `Thread::unpark`.  `park`/`unpark` carry a
/// token, so a wake that lands before the executor parks is not lost.
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Runs a future to completion on the calling thread.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_returns_ready_value() {
        assert_eq!(block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_survives_a_pending_then_woken_future() {
        let out = block_on(async {
            crate::time::sleep(std::time::Duration::from_millis(5)).await;
            "woke"
        });
        assert_eq!(out, "woke");
    }
}
