//! Task spawning: one OS thread per task.

use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// The task panicked (or was cancelled — the stand-in never cancels).
pub struct JoinError {
    message: String,
}

impl std::fmt::Debug for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JoinError({})", self.message)
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task failed: {}", self.message)
    }
}

impl std::error::Error for JoinError {}

struct Shared<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

/// An owned handle to a spawned task; awaiting it yields the task's output.
pub struct JoinHandle<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

impl<T> JoinHandle<T> {
    /// Requests cancellation.  The stand-in runs tasks on detached OS
    /// threads, which cannot be interrupted safely, so this is a no-op: the
    /// task keeps running in the background and is reaped at process exit.
    /// Call sites only abort infinite server loops right before exiting, so
    /// the observable behaviour matches tokio.
    pub fn abort(&self) {}

    /// Whether the task has finished.
    pub fn is_finished(&self) -> bool {
        self.shared.lock().unwrap().result.is_some()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut shared = self.shared.lock().unwrap();
        if let Some(result) = shared.result.take() {
            Poll::Ready(result)
        } else {
            shared.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Spawns a future on a dedicated OS thread, driven by its own `block_on`.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let shared = Arc::new(Mutex::new(Shared {
        result: None,
        waker: None,
    }));
    let task_shared = shared.clone();
    std::thread::Builder::new()
        .name("tokio-stub-task".into())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| crate::runtime::block_on(future)))
                .map_err(|panic| JoinError {
                    message: panic
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "task panicked".into()),
                });
            let mut shared = task_shared.lock().unwrap();
            shared.result = Some(result);
            if let Some(waker) = shared.waker.take() {
                waker.wake();
            }
        })
        .expect("spawn task thread");
    JoinHandle { shared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn spawned_task_result_is_awaitable() {
        let out = block_on(async {
            let h = spawn(async { 6 * 7 });
            h.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn panicking_task_yields_join_error() {
        let err = block_on(async { spawn(async { panic!("boom") }).await });
        assert!(err.is_err());
    }
}
