//! Timers: `sleep` and `timeout`.
//!
//! Without a reactor there is nothing to register deadlines with, so
//! pending timer futures self-wake after briefly blocking their (dedicated)
//! task thread.  Granularity is a few milliseconds — ample for the loopback
//! tests this runtime exists to serve.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// How long a pending timer/IO future blocks before re-polling.
pub(crate) const POLL_SLICE: Duration = Duration::from_millis(2);

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`sleep`].
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let now = Instant::now();
        if now >= self.deadline {
            return Poll::Ready(());
        }
        // Block this task thread for up to one slice, then re-poll.
        std::thread::sleep((self.deadline - now).min(POLL_SLICE));
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Waits until `duration` has elapsed.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: Pin<Box<F>>,
    deadline: Instant,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(v) = self.future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Instant::now() >= self.deadline {
            return Poll::Ready(Err(Elapsed(())));
        }
        // The inner future self-wakes (every pending primitive in this
        // stand-in does), so the deadline is re-checked promptly.
        cx.waker().wake_by_ref();
        Poll::Pending
    }
}

/// Requires `future` to complete within `duration`.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future: Box::pin(future),
        deadline: Instant::now() + duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::block_on;

    #[test]
    fn sleep_waits_at_least_the_requested_time() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn timeout_passes_through_fast_futures() {
        let v = block_on(timeout(Duration::from_secs(1), async { 5 })).unwrap();
        assert_eq!(v, 5);
    }

    #[test]
    fn timeout_fires_on_slow_futures() {
        let r = block_on(timeout(
            Duration::from_millis(10),
            sleep(Duration::from_secs(5)),
        ));
        assert!(r.is_err());
    }
}
