//! Offline stand-in for `tokio-macros`.
//!
//! Rewrites `async fn` items so they run under the stand-in runtime's
//! `block_on`.  The transformation is purely token-level (no `syn`): the
//! item's final brace group is the body; everything before it is the
//! signature, from which the single top-level `async` keyword is dropped.
//! Runtime-configuration attribute arguments (`flavor`, `worker_threads`,
//! ...) are accepted and ignored — the stand-in runtime is thread-per-task.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

/// `#[tokio::main]`: turns `async fn main()` into a sync `fn main` that
/// drives the future to completion on the stand-in runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap_async_fn(item, false)
}

/// `#[tokio::test]`: like [`main`], plus the standard `#[test]` attribute.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap_async_fn(item, true)
}

fn wrap_async_fn(item: TokenStream, is_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();

    // The body is the trailing brace group; the signature is everything
    // before it, minus the `async` qualifier.
    let Some((TokenTree::Group(body), sig)) = tokens.split_last() else {
        return error("expected a function item");
    };
    if body.delimiter() != Delimiter::Brace {
        return error("expected a function with a brace-delimited body");
    }
    let mut saw_async = false;
    let signature: TokenStream = sig
        .iter()
        .filter(|tt| {
            if let TokenTree::Ident(id) = tt {
                if !saw_async && id.to_string() == "async" {
                    saw_async = true;
                    return false;
                }
            }
            true
        })
        .cloned()
        .collect();
    if !saw_async {
        return error("#[tokio::main]/#[tokio::test] requires an async fn");
    }

    // `::tokio::runtime::block_on(async move { <body> })`
    let mut call_args = TokenStream::new();
    call_args.extend("async move".parse::<TokenStream>().unwrap());
    call_args.extend([TokenTree::Group(body.clone())]);
    let mut fn_body = TokenStream::new();
    fn_body.extend("::tokio::runtime::block_on".parse::<TokenStream>().unwrap());
    fn_body.extend([TokenTree::Group(Group::new(
        Delimiter::Parenthesis,
        call_args,
    ))]);

    let mut out = TokenStream::new();
    if is_test {
        out.extend(
            "#[::core::prelude::v1::test]"
                .parse::<TokenStream>()
                .unwrap(),
        );
    }
    out.extend(signature);
    out.extend([TokenTree::Group(Group::new(Delimiter::Brace, fn_body))]);
    out
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}
